"""Output-schema typechecking of publishing views (static + streaming).

The deploy-time gate the ROADMAP promised: given a view and a target
:class:`~repro.xmltree.dtd.DTD`, decide *before the first publish* whether
every output document conforms -- and when the fragment makes that
undecidable (Proposition 2: FO/IFP rule queries), validate the emitted
stream at runtime instead.  Two halves:

* :mod:`repro.typecheck.static` -- a reachable-``(state, tag)`` abstraction
  over the compiled plan, inclusion-checked rule by rule on the minimised
  content-model DFAs of :meth:`Regex.to_dfa`, with concrete counterexample
  *source instances* (built through the emptiness machinery's witnesses)
  for refutations: :func:`typecheck_plan` returns ``PROVED`` / ``REFUTED``
  / ``UNDECIDED``;
* :mod:`repro.typecheck.streaming` -- an O(depth) fold over
  ``publish_events`` (no tree construction) raising structured
  :class:`OutputValidationError` on the first violation.

The serving stack wires both in end to end:
``ViewServer.register_view(..., output_dtd=..., typecheck="static")``
rejects refuted views at registration (cluster-wide through the net tier
and the shard router, the DTD travelling as pure data), proved views
publish with zero per-publish validation cost, and undecided views stream
through the validator with per-version memoisation.
"""

from repro.typecheck.static import (
    TypecheckResult,
    Verdict,
    inclusion_counterexample,
    typecheck_plan,
    typecheck_transducer,
)
from repro.typecheck.streaming import (
    OutputValidationError,
    StreamingValidator,
    Violation,
    find_violation,
    validate_events,
    validate_tree,
)

__all__ = [
    "OutputValidationError",
    "StreamingValidator",
    "TypecheckResult",
    "Verdict",
    "Violation",
    "find_violation",
    "inclusion_counterexample",
    "typecheck_plan",
    "typecheck_transducer",
    "validate_events",
    "validate_tree",
]
