"""Static output typechecking of publishing transducers against a DTD.

The deploy-time half of :mod:`repro.typecheck`.  Given a compiled
:class:`~repro.engine.plan.PublishingPlan` (or a bare transducer) and a
target :class:`~repro.xmltree.dtd.DTD`, decide -- where the fragment allows
-- whether *every* output tree conforms, and classify the view as

* ``PROVED`` -- a sound reachable-``(state, tag)`` abstraction shows every
  possible child-label sequence of every reachable output node lies inside
  its tag's content model;
* ``REFUTED`` -- a concrete counterexample *source instance* was constructed
  (through the emptiness machinery's path compositions and
  :func:`~repro.analysis.emptiness.witness_instance`) whose published
  document demonstrably violates the DTD, together with the offending path;
* ``UNDECIDED`` -- neither: the abstraction found a potentially escaping
  child sequence but no witness verified (FO/IFP rule queries defeat path
  composition, per Proposition 2 output typechecking is undecidable there);
  the serving layer then falls back to the streaming runtime validator.

The abstraction, rule by rule
-----------------------------

For every reachable non-virtual pair ``(q, a)`` the checker builds a regular
over-approximation of the child-label sequences an ``a``-node in state ``q``
can emit, then tests regular-language inclusion against ``d(a)`` on the
minimised DFAs of :meth:`Regex.to_dfa` (product walk; a shortest escaping
word is the inclusion counterexample).  Soundness of ``PROVED`` rests on the
approximation only ever *adding* words:

* an item ``(q', a', phi)`` contributes ``a'*`` in general (one child per
  answer group), ``a'?`` for relation registers (``|x| = 0``: at most one
  group), and exactly ``a'`` when the query provably returns exactly one
  answer -- a single all-variable register atom over a register that every
  producing item fills with a *tuple* register (exactly one tuple);
* virtual items contribute the flattened child language of their target pair
  (virtual nodes splice their children in place); recursion through virtual
  pairs falls back to ``(t1 | ... | tn)*`` over the *frontier tags* -- every
  non-virtual tag reachable through virtual rules -- which contains every
  possible splice;
* pairs on a dependency-graph cycle additionally admit the empty sequence:
  the engine's stop condition turns a repeated ``(state, tag, register)``
  configuration into a leaf, so any such node may legitimately emit no
  children (the node-budget, by contrast, raises rather than truncates and
  cannot silently falsify a verdict).

Refutation never trusts the abstraction: candidate sources are built from
satisfiable path compositions (canonical instances, plus prefix-renamed
unions for multiplicity violations) and each candidate is *published and
validated* -- only a concrete non-conforming document refutes, so the
witness shipped with the rejection replays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.composition import CompositionError, compose_path
from repro.analysis.emptiness import witness_instance
from repro.analysis.membership import source_schema
from repro.core.dependency import DependencyGraph, Node
from repro.core.rules import GENERIC_REGISTER_NAME, RuleItem
from repro.core.transducer import PublishingTransducer
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable
from repro.relational.instance import Instance
from repro.typecheck.streaming import Violation, find_violation
from repro.xmltree.dtd import DTD, Alt, Concat, Epsilon, Regex, Star, Symbol
from repro.xmltree.tree import TEXT_TAG


class Verdict(enum.Enum):
    """Three-valued outcome of the static check."""

    PROVED = "proved"
    REFUTED = "refuted"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class TypecheckResult:
    """Outcome of :func:`typecheck_plan` / :func:`typecheck_transducer`.

    ``witness`` and ``violation`` are set exactly for ``REFUTED``: the
    counterexample source instance and the offending path of the document it
    publishes.  ``reasons`` collects, for ``UNDECIDED``, one line per
    unproven pair (which escaping child word the abstraction found and why
    no witness verified).
    """

    verdict: Verdict
    dtd: DTD
    witness: Instance | None = None
    violation: Violation | None = None
    reasons: tuple[str, ...] = ()
    checked_pairs: int = 0

    @property
    def proved(self) -> bool:
        return self.verdict is Verdict.PROVED

    @property
    def refuted(self) -> bool:
        return self.verdict is Verdict.REFUTED

    def as_dict(self) -> dict:
        """The result as plain data (stats / wire friendly)."""
        return {
            "verdict": self.verdict.value,
            "checked_pairs": self.checked_pairs,
            "reasons": list(self.reasons),
            "violation": self.violation.as_dict() if self.violation else None,
            "has_witness": self.witness is not None,
        }

    def describe(self) -> str:
        """A compact human-readable summary."""
        if self.verdict is Verdict.PROVED:
            return f"proved over {self.checked_pairs} reachable (state, tag) pair(s)"
        if self.verdict is Verdict.REFUTED:
            where = self.violation.describe() if self.violation else "?"
            return f"refuted: witness instance publishes a violation at {where}"
        return "undecided: " + ("; ".join(self.reasons) or "no reason recorded")


# ---------------------------------------------------------------------------
# The reachable-(state, tag) abstraction.
# ---------------------------------------------------------------------------


@dataclass
class _Abstraction:
    """Shared context of one static check over one transducer."""

    transducer: PublishingTransducer
    graph: DependencyGraph
    cyclic: frozenset[Node]
    producers: dict[Node, list[RuleItem]] = field(default_factory=dict)

    @classmethod
    def build(cls, transducer: PublishingTransducer) -> "_Abstraction":
        graph = DependencyGraph(transducer)
        reachable = graph.reachable_nodes()
        cyclic = frozenset(node for node in reachable if _has_self_path(graph, node))
        producers: dict[Node, list[RuleItem]] = {}
        for rule_ in transducer.rules:
            for item in rule_.items:
                producers.setdefault((item.state, item.tag), []).append(item)
        return cls(transducer, graph, cyclic, producers)

    # -- child-language construction ----------------------------------------

    def child_language(self, node: Node) -> Regex:
        """Over-approximate the child-label sequences of a ``node`` element."""
        return self._sequence(node, frozenset())

    def _sequence(self, node: Node, stack: frozenset[Node]) -> Regex:
        rule_ = self.transducer.rule_for(*node)
        parts = tuple(
            self._contribution(node, item, stack | {node}) for item in rule_.items
        )
        expr: Regex = Concat(parts) if parts else Epsilon()
        if node in self.cyclic and not expr.nullable():
            # The stop condition may turn this node into a leaf.
            expr = Alt((Epsilon(), expr))
        return expr

    def _contribution(self, parent: Node, item: RuleItem, stack: frozenset[Node]) -> Regex:
        target: Node = (item.state, item.tag)
        if item.tag in self.transducer.virtual_tags:
            if target in stack:
                base = self._frontier_star(target)
            else:
                base = self._sequence(target, stack)
        else:
            base = Symbol(item.tag)
        if self._exactly_one(parent, item):
            return base
        if item.query.group_arity == 0:
            # Relation register: the whole answer set is one group -> <= 1 child.
            return base if base.nullable() else Alt((Epsilon(), base))
        return Star(base)

    def _frontier_star(self, node: Node) -> Regex:
        """``(t1 | ... | tn)*`` over every non-virtual tag a virtual pair can splice."""
        virtual = self.transducer.virtual_tags
        seen = {node}
        queue = [node]
        tags: set[str] = set()
        while queue:
            state, tag = queue.pop()
            for item in self.transducer.rule_for(state, tag).items:
                if item.tag in virtual:
                    successor = (item.state, item.tag)
                    if successor not in seen:
                        seen.add(successor)
                        queue.append(successor)
                else:
                    tags.add(item.tag)
        if not tags:
            return Epsilon()
        return Star(Alt(tuple(Symbol(tag) for tag in sorted(tags))))

    def _exactly_one(self, parent: Node, item: RuleItem) -> bool:
        """Does ``item`` provably emit exactly one child under every source?

        Sufficient conditions, each load-bearing for soundness: the parent's
        register always holds exactly one tuple (every producer of the
        parent pair groups by its full head -- a tuple register -- and the
        parent is not the root, whose register is empty), and the query is a
        comparison-free CQ over a single all-distinct-variable register atom
        of the right arity whose head only uses those variables.  Then the
        one register tuple matches the atom in exactly one way, the answer
        set has exactly one row, and grouping yields exactly one child.
        """
        if parent == self.graph.root:
            return False
        makers = self.producers.get(parent)
        if not makers or not all(maker.query.is_tuple_query for maker in makers):
            return False
        query = item.query.query
        if not isinstance(query, ConjunctiveQuery):
            return False
        if query.comparisons or len(query.atoms) != 1:
            return False
        atom = query.atoms[0]
        register_names = {GENERIC_REGISTER_NAME, f"Reg_{parent[1]}"}
        if atom.relation not in register_names:
            return False
        arity = self.transducer.register_arities.get(parent[1])
        if arity is None or len(atom.terms) != arity:
            return False
        if any(not isinstance(term, Variable) for term in atom.terms):
            return False
        if len(set(atom.terms)) != len(atom.terms):
            return False
        return set(query.head) <= set(atom.terms)


def _has_self_path(graph: DependencyGraph, node: Node) -> bool:
    """True when ``node`` lies on a cycle (reachable from itself via >= 1 edge)."""
    seen: set[Node] = set()
    queue = [successor for successor in graph.successors(node)]
    while queue:
        current = queue.pop()
        if current == node:
            return True
        if current in seen:
            continue
        seen.add(current)
        queue.extend(graph.successors(current))
    return False


# ---------------------------------------------------------------------------
# Regular-language inclusion on the minimised DFAs.
# ---------------------------------------------------------------------------


def inclusion_counterexample(candidate: Regex, model: Regex) -> tuple[str, ...] | None:
    """A shortest word of ``L(candidate) \\ L(model)``, or ``None`` if included.

    Product BFS over the two cached minimised DFAs; the model side runs with
    an explicit dead marker so escapes through symbols outside its alphabet
    are found too.
    """
    left = candidate.to_dfa()
    right = model.to_dfa()
    dead = -1
    start = (left.start, right.start)
    if left.start in left.accepting and right.start not in right.accepting:
        return ()
    seen = {start}
    frontier: list[tuple[tuple[int, int], tuple[str, ...]]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[tuple[int, int], tuple[str, ...]]] = []
        for (ls, rs), word in frontier:
            for tag in sorted(left.alphabet):
                lt = left.step(ls, tag)
                if lt is None:
                    continue  # the word dies on the candidate side too
                rt = right.step(rs, tag) if rs != dead else None
                rt = dead if rt is None else rt
                pair = (lt, rt)
                extended = word + (tag,)
                if lt in left.accepting and (rt == dead or rt not in right.accepting):
                    return extended
                if pair not in seen:
                    seen.add(pair)
                    next_frontier.append((pair, extended))
        frontier = next_frontier
    return None


# ---------------------------------------------------------------------------
# Witness search (refutation must be concrete).
# ---------------------------------------------------------------------------


def _candidate_witnesses(
    transducer: PublishingTransducer,
    graph: DependencyGraph,
    node: Node,
    max_paths: int,
):
    """Candidate counterexample sources aimed at exercising ``node``.

    Canonical instances of the satisfiable path compositions reaching the
    pair, plus pairwise unions of prefix-renamed copies: a union carries two
    disjoint sets of matching facts, producing the sibling multiplicities
    that refute at-most-one content models.  FO/IFP queries on a path raise
    :class:`CompositionError` and simply yield no candidate from that path.
    """
    paths = graph.simple_paths_from_root(
        target_predicate=lambda candidate: candidate == node, max_paths=max_paths
    )
    for path in sorted(paths, key=len):
        try:
            composed = compose_path(transducer, path)
        except CompositionError:
            continue
        if not composed.is_satisfiable():
            continue
        first = witness_instance(transducer, composed, prefix="_w")
        if first is None:
            continue
        yield first
        second = witness_instance(transducer, composed, prefix="_w2x")
        if second is not None:
            yield _union_instances(first, second)


def _union_instances(first: Instance, second: Instance) -> Instance:
    """One instance holding both witnesses' facts (schemas are shared)."""
    data = {}
    for name in first.schema.names():
        rows = list(first[name])
        seen = set(rows)
        rows.extend(row for row in second[name] if row not in seen)
        data[name] = rows
    return Instance(first.schema, data)


def _empty_instance(transducer: PublishingTransducer) -> Instance | None:
    """The empty source over the reconstructed schema (root-only output)."""
    try:
        schema = source_schema(transducer)
        return Instance(schema, {name: [] for name in schema.names()})
    except Exception:
        return None


# ---------------------------------------------------------------------------
# The checker.
# ---------------------------------------------------------------------------

#: Node budget for publishing candidate witnesses (they are tiny canonical
#: databases; anything that blows past this is not a useful counterexample).
_WITNESS_BUDGET = 20_000


def typecheck_plan(plan, dtd: DTD, *, max_paths: int = 2_000) -> TypecheckResult:
    """Statically check a compiled plan's output language against ``dtd``.

    The compiled plan supplies both the transducer (for the abstraction) and
    the publisher used to *verify* candidate witnesses, so a ``REFUTED``
    result's witness replays through the very plan the server would serve.
    """
    return _typecheck(
        plan.transducer,
        dtd,
        lambda instance: plan.publish(instance, _WITNESS_BUDGET),
        max_paths,
    )


def typecheck_transducer(
    transducer: PublishingTransducer, dtd: DTD, *, max_paths: int = 2_000
) -> TypecheckResult:
    """:func:`typecheck_plan` for a bare transducer (compiles a throwaway plan)."""
    from repro.engine.plan import compile_plan

    plan = compile_plan(transducer)
    return _typecheck(
        transducer, dtd, lambda instance: plan.publish(instance, _WITNESS_BUDGET), max_paths
    )


def _typecheck(transducer, dtd, publish, max_paths) -> TypecheckResult:
    # Root tag mismatch refutes on *every* source, the empty one included.
    if transducer.root_tag != dtd.root:
        violation = Violation(
            path=(),
            tags=(transducer.root_tag,),
            tag=transducer.root_tag,
            reason=(
                f"root element is {transducer.root_tag!r}, the DTD requires "
                f"{dtd.root!r}"
            ),
        )
        return TypecheckResult(
            Verdict.REFUTED,
            dtd,
            witness=_empty_instance(transducer),
            violation=violation,
        )

    abstraction = _Abstraction.build(transducer)
    graph = abstraction.graph
    virtual = transducer.virtual_tags
    element_pairs = sorted(
        node
        for node in graph.reachable_nodes()
        if node[1] not in virtual and node[1] != TEXT_TAG
    )

    suspects: list[tuple[Node, tuple[str, ...], Regex]] = []
    for node in element_pairs:
        approx = abstraction.child_language(node)
        model = dtd.content_model(node[1])
        word = inclusion_counterexample(approx, model)
        if word is not None:
            suspects.append((node, word, model))

    if not suspects:
        return TypecheckResult(Verdict.PROVED, dtd, checked_pairs=len(element_pairs))

    # Refutation: publish candidate sources and look for a real violation.
    candidates_seen = 0
    for node, word, model in suspects:
        for candidate in _candidate_witnesses(transducer, graph, node, max_paths):
            candidates_seen += 1
            try:
                tree = publish(candidate)
            except Exception:
                continue  # budget blow-up etc: not a usable witness
            violation = find_violation(tree, dtd)
            if violation is not None:
                return TypecheckResult(
                    Verdict.REFUTED,
                    dtd,
                    witness=candidate,
                    violation=violation,
                    checked_pairs=len(element_pairs),
                )
    # The empty source refutes content models that demand children the view
    # may not emit (e.g. a required root child under an empty database).
    empty = _empty_instance(transducer)
    if empty is not None:
        try:
            violation = find_violation(publish(empty), dtd)
        except Exception:
            violation = None
        if violation is not None:
            return TypecheckResult(
                Verdict.REFUTED,
                dtd,
                witness=empty,
                violation=violation,
                checked_pairs=len(element_pairs),
            )

    reasons = tuple(
        f"({node[0]}, {node[1]}): children may form {'·'.join(word) if word else 'ε'}, "
        f"which escapes the content model {model}"
        for node, word, model in suspects
    )
    return TypecheckResult(
        Verdict.UNDECIDED,
        dtd,
        reasons=reasons,
        checked_pairs=len(element_pairs),
    )
