"""Streaming DTD validation over publish event streams.

The runtime half of :mod:`repro.typecheck`: for views the static checker
cannot prove (``UNDECIDED``) -- or views registered with
``typecheck="runtime"`` -- the server validates the *emitted* document
against the target DTD while it streams.  The validator folds over the
SAX-style events of :meth:`~repro.engine.plan.PublishingPlan.publish_events`
(or :func:`~repro.xmltree.events.tree_to_events` for maintained trees) with
one stack frame per *open* element -- O(depth) state, no tree construction
-- in the spirit of the Alur/D'Antoni streaming tree transducers: each frame
carries only the current DFA state of its element's content model, never the
child word itself.

Violations surface as :class:`OutputValidationError` carrying a structured
:class:`Violation` (offending path as child indices plus tags, the reason,
and the expected content model), which the serving stack forwards as data --
the same shape the static checker reports for refuted views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.xmltree.dtd import DTD, Regex
from repro.xmltree.events import CloseEvent, OpenEvent, TextEvent, XmlEvent
from repro.xmltree.tree import TEXT_TAG, TreeNode


@dataclass(frozen=True)
class Violation:
    """One DTD violation, located by its path from the document root.

    ``path`` holds child indices (root excluded), ``tags`` the element tags
    along the same path *including* the offending element, so
    ``/db/course[2]/title`` renders from the two together.
    """

    path: tuple[int, ...]
    tags: tuple[str, ...]
    tag: str
    reason: str
    expected: str | None = None
    child_index: int | None = None

    def location(self) -> str:
        """An XPath-ish rendering of the offending node's position."""
        if not self.tags:
            return "/"
        parts = [self.tags[0]]
        for tag, index in zip(self.tags[1:], self.path):
            parts.append(f"{tag}[{index}]")
        return "/" + "/".join(parts)

    def as_dict(self) -> dict:
        """The violation as plain data (wire- and JSON-friendly)."""
        return {
            "path": list(self.path),
            "tags": list(self.tags),
            "tag": self.tag,
            "reason": self.reason,
            "expected": self.expected,
            "child_index": self.child_index,
            "location": self.location(),
        }

    def describe(self) -> str:
        """One human-readable line."""
        expected = f" (content model: {self.expected})" if self.expected else ""
        return f"{self.location()}: {self.reason}{expected}"


class OutputValidationError(ValueError):
    """A published document violates the view's registered output DTD."""

    def __init__(self, violation: Violation, view: str | None = None) -> None:
        self.violation = violation
        self.view = view
        prefix = f"view {view!r}: " if view else ""
        super().__init__(f"{prefix}output violates DTD at {violation.describe()}")


@dataclass
class _Frame:
    """One open element: its tag, content-model DFA state and child cursor."""

    __slots__ = ("tag", "dfa", "state", "children", "index")

    tag: str
    dfa: object
    state: int
    children: int
    index: int


class StreamingValidator:
    """Fold a document event stream through per-element content-model DFAs.

    Usage: :meth:`feed` every event, then :meth:`finish`; both raise
    :class:`OutputValidationError` on the *first* violation, located by the
    open-element stack at that moment.  Memory is O(open depth): one frame
    per open element, each holding a single DFA state integer.  Violations
    are detected as early as the automaton allows -- an impossible child is
    rejected at its open event, an incomplete content word at the close
    event of its parent.
    """

    def __init__(self, dtd: DTD, view: str | None = None) -> None:
        self._dtd = dtd
        self._view = view
        self._frames: list[_Frame] = []
        self._roots = 0
        self.events = 0

    # -- event folding -------------------------------------------------------

    def feed(self, event: XmlEvent) -> None:
        """Advance the run by one event; raise on the first violation."""
        self.events += 1
        if isinstance(event, OpenEvent):
            self._open(event.tag)
        elif isinstance(event, TextEvent):
            self._text()
        elif isinstance(event, CloseEvent):
            self._close(event.tag)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event: {event!r}")

    def finish(self) -> None:
        """Declare the stream complete; raise when elements are still open."""
        if self._frames:
            self._fail(
                self._frames[-1].tag,
                f"event stream ended inside open element {self._frames[-1].tag!r}",
                model=None,
            )
        if not self._roots:
            self._fail(self._dtd.root, "empty document (no root element)", model=None)

    def validate(self, events: Iterable[XmlEvent]) -> int:
        """Fold a whole stream; returns the number of events consumed."""
        for event in events:
            self.feed(event)
        self.finish()
        return self.events

    # -- internals -----------------------------------------------------------

    def _open(self, tag: str) -> None:
        if not self._frames:
            if self._roots:
                self._fail(tag, "document has more than one root element", model=None)
            if tag != self._dtd.root:
                self._fail(
                    tag,
                    f"root element is {tag!r}, the DTD requires {self._dtd.root!r}",
                    model=None,
                )
            self._roots += 1
            index = 0
        else:
            index = self._advance(tag)
        dfa = self._dtd.content_model(tag).to_dfa()
        self._frames.append(_Frame(tag, dfa, dfa.start, 0, index))

    def _text(self) -> None:
        if not self._frames:
            self._fail(TEXT_TAG, "text content outside the root element", model=None)
        self._advance(TEXT_TAG)

    def _close(self, tag: str) -> None:
        if not self._frames:
            self._fail(tag, f"close event for {tag!r} without a matching open", model=None)
        frame = self._frames[-1]
        if frame.tag != tag:  # malformed stream, not a schema issue
            self._fail(tag, f"close event for {tag!r} inside open element {frame.tag!r}", model=None)
        if frame.state not in frame.dfa.accepting:
            model = self._dtd.content_model(frame.tag)
            self._fail(
                frame.tag,
                f"content of {frame.tag!r} is incomplete after "
                f"{frame.children} child(ren)",
                model=model,
            )
        self._frames.pop()

    def _advance(self, tag: str) -> int:
        """Step the innermost frame's DFA by one child tag."""
        frame = self._frames[-1]
        index = frame.children
        successor = frame.dfa.step(frame.state, tag)
        if successor is None:
            model = self._dtd.content_model(frame.tag)
            self._fail(
                tag,
                f"child {index} of {frame.tag!r} is {tag!r}, which no word of "
                f"the content model allows here",
                model=model,
                child_index=index,
            )
        frame.state = successor
        frame.children += 1
        return index

    def _fail(
        self,
        tag: str,
        reason: str,
        model: Regex | None,
        child_index: int | None = None,
    ) -> None:
        path = tuple(frame.index for frame in self._frames[1:])
        tags = tuple(frame.tag for frame in self._frames)
        if child_index is not None and self._frames:
            path = path + (child_index,)
            tags = tags + (tag,)
        violation = Violation(
            path=path,
            tags=tags or (tag,),
            tag=tag,
            reason=reason,
            expected=str(model) if model is not None else None,
            child_index=child_index,
        )
        raise OutputValidationError(violation, self._view)


def validate_events(
    events: Iterable[XmlEvent],
    dtd: DTD,
    *,
    view: str | None = None,
    on_valid: Callable[[], None] | None = None,
) -> Iterator[XmlEvent]:
    """A validating pass-through: yield every event while checking it.

    The single-pass form used by ``output="events"`` publishes: the consumer
    drives the underlying lazy stream exactly once, each event is checked
    before it is handed over, and ``on_valid`` fires after the final event
    passed -- the server's hook for marking the version validated.
    """
    validator = StreamingValidator(dtd, view)
    for event in events:
        validator.feed(event)
        yield event
    validator.finish()
    if on_valid is not None:
        on_valid()


def validate_tree(tree: TreeNode, dtd: DTD, *, view: str | None = None) -> int:
    """Validate a materialised tree through the streaming fold (stack-safe).

    Iterative end to end (:func:`tree_to_events` is loop-based), so deep
    spines at Proposition-1 depths do not touch the recursion limit the way
    :meth:`DTD.conforms` would.  Returns the number of events checked.
    """
    from repro.xmltree.events import tree_to_events

    return StreamingValidator(dtd, view).validate(tree_to_events(tree))


def find_violation(tree: TreeNode, dtd: DTD) -> Violation | None:
    """The first violation of ``tree`` against ``dtd``, or ``None``.

    The non-raising probe used by the static checker to confirm refutation
    witnesses and locate their offending paths.
    """
    try:
        validate_tree(tree, dtd)
    except OutputValidationError as error:
        return error.violation
    return None
