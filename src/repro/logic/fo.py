"""First-order queries (``FO``) and the formula machinery shared with ``IFP``.

Formulas are built from relation atoms, equality, the Boolean connectives and
quantifiers; :class:`Fixpoint` (defined here, re-exported by
:mod:`repro.logic.ifp`) adds the inflationary fixpoint operator
``[mu+_{S,x}(phi)](t)`` of the paper.  Evaluation uses active-domain
semantics: quantified variables range over the active domain of the instance
extended with the constants of the query, which is the standard semantics for
relational calculus and the one intended by the paper (the order on ``D`` is
*not* accessible to formulas).

The evaluator is bottom-up: every sub-formula is evaluated to the set of
valuations of its free variables that satisfy it.  This is exponential only in
the number of free variables under a negation, which is small in all the
queries of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.logic.base import Query, QueryLogic
from repro.logic.terms import Constant, Term, Variable, substitute_term, terms_of


class Formula:
    """Base class of first-order / fixpoint formulas."""

    def free_variables(self) -> frozenset[Variable]:
        """The free variables of the formula."""
        raise NotImplementedError

    def relation_names(self) -> frozenset[str]:
        """All relation names mentioned (including inside fixpoints)."""
        raise NotImplementedError

    def constants(self) -> frozenset[DataValue]:
        """All constants mentioned."""
        raise NotImplementedError

    def substitute(self, substitution: Mapping[Variable, Term]) -> "Formula":
        """Apply a substitution to the free variables of the formula."""
        raise NotImplementedError

    def transform_atoms(self, transform: Callable[["Rel"], "Formula"]) -> "Formula":
        """Rebuild the formula, replacing every relation atom via ``transform``."""
        raise NotImplementedError

    def uses_fixpoint(self) -> bool:
        """True when the formula contains a :class:`Fixpoint` operator."""
        raise NotImplementedError

    # Connective sugar -------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula that is always true."""

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def constants(self) -> frozenset[DataValue]:
        return frozenset()

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return self

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return self

    def uses_fixpoint(self) -> bool:
        return False

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The formula that is always false."""

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def constants(self) -> frozenset[DataValue]:
        return frozenset()

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return self

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return self

    def uses_fixpoint(self) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Rel(Formula):
    """A relation atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", terms_of(self.terms))

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def relation_names(self) -> frozenset[str]:
        return frozenset({self.relation})

    def constants(self) -> frozenset[DataValue]:
        return frozenset(t.value for t in self.terms if isinstance(t, Constant))

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return Rel(self.relation, tuple(substitute_term(t, substitution) for t in self.terms))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return transform(self)

    def uses_fixpoint(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Eq(Formula):
    """Equality between two terms; use ``Not(Eq(...))`` (or ``Neq``) for ``!=``."""

    left: Term
    right: Term

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def constants(self) -> frozenset[DataValue]:
        return frozenset(t.value for t in (self.left, self.right) if isinstance(t, Constant))

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return Eq(substitute_term(self.left, substitution), substitute_term(self.right, substitution))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return self

    def uses_fixpoint(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def Neq(left: Term, right: Term) -> Formula:
    """Inequality ``left != right`` as syntactic sugar for ``Not(Eq(...))``."""
    return Not(Eq(left, right))


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables()

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def constants(self) -> frozenset[DataValue]:
        return self.operand.constants()

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return Not(self.operand.substitute(substitution))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return Not(self.operand.transform_atoms(transform))

    def uses_fixpoint(self) -> bool:
        return self.operand.uses_fixpoint()

    def __str__(self) -> str:
        return f"~({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of any number of operands."""

    operands: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def free_variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def relation_names(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.relation_names()
        return result

    def constants(self) -> frozenset[DataValue]:
        result: frozenset[DataValue] = frozenset()
        for operand in self.operands:
            result |= operand.constants()
        return result

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return And(tuple(op.substitute(substitution) for op in self.operands))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return And(tuple(op.transform_atoms(transform) for op in self.operands))

    def uses_fixpoint(self) -> bool:
        return any(op.uses_fixpoint() for op in self.operands)

    def __str__(self) -> str:
        return "(" + " & ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of any number of operands."""

    operands: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def free_variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def relation_names(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.relation_names()
        return result

    def constants(self) -> frozenset[DataValue]:
        result: frozenset[DataValue] = frozenset()
        for operand in self.operands:
            result |= operand.constants()
        return result

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        return Or(tuple(op.substitute(substitution) for op in self.operands))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return Or(tuple(op.transform_atoms(transform) for op in self.operands))

    def uses_fixpoint(self) -> bool:
        return any(op.uses_fixpoint() for op in self.operands)

    def __str__(self) -> str:
        return "(" + " | ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def constants(self) -> frozenset[DataValue]:
        return self.operand.constants()

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        trimmed = {v: t for v, t in substitution.items() if v not in self.variables}
        return Exists(self.variables, self.operand.substitute(trimmed))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return Exists(self.variables, self.operand.transform_atoms(transform))

    def uses_fixpoint(self) -> bool:
        return self.operand.uses_fixpoint()

    def __str__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"(exists {names}. {self.operand})"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification over one or more variables."""

    variables: tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def constants(self) -> frozenset[DataValue]:
        return self.operand.constants()

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        trimmed = {v: t for v, t in substitution.items() if v not in self.variables}
        return Forall(self.variables, self.operand.substitute(trimmed))

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        return Forall(self.variables, self.operand.transform_atoms(transform))

    def uses_fixpoint(self) -> bool:
        return self.operand.uses_fixpoint()

    def __str__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"(forall {names}. {self.operand})"


@dataclass(frozen=True)
class Fixpoint(Formula):
    """The inflationary fixpoint ``[mu+_{S, x}(phi(S, x))](t)`` of the paper.

    ``recursion_relation`` is the second-order variable ``S``; ``variables``
    is the tuple ``x`` of recursion variables (whose length is the arity of
    ``S``); ``formula`` is ``phi`` (which may mention ``S`` as an ordinary
    relation atom); ``terms`` is the tuple ``t`` of terms the fixpoint is
    applied to.  The free variables of the whole formula are the variables of
    ``terms``.
    """

    recursion_relation: str
    variables: tuple[Variable, ...]
    formula: Formula
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))
        object.__setattr__(self, "terms", terms_of(self.terms))
        if len(self.variables) != len(self.terms):
            raise ValueError("fixpoint recursion variables and applied terms must have equal length")

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def relation_names(self) -> frozenset[str]:
        return self.formula.relation_names() - {self.recursion_relation}

    def constants(self) -> frozenset[DataValue]:
        result = self.formula.constants()
        result |= frozenset(t.value for t in self.terms if isinstance(t, Constant))
        return result

    def substitute(self, substitution: Mapping[Variable, Term]) -> Formula:
        # Only the applied terms contain free variables; phi's free variables
        # are exactly the recursion variables, which are bound here.
        return Fixpoint(
            self.recursion_relation,
            self.variables,
            self.formula,
            tuple(substitute_term(t, substitution) for t in self.terms),
        )

    def transform_atoms(self, transform: Callable[["Rel"], Formula]) -> Formula:
        def guarded(atom: Rel) -> Formula:
            if atom.relation == self.recursion_relation:
                return atom
            return transform(atom)

        return Fixpoint(
            self.recursion_relation,
            self.variables,
            self.formula.transform_atoms(guarded),
            self.terms,
        )

    def uses_fixpoint(self) -> bool:
        return True

    def __str__(self) -> str:
        xs = ", ".join(v.name for v in self.variables)
        ts = ", ".join(str(t) for t in self.terms)
        return f"[ifp {self.recursion_relation}({xs}). {self.formula}]({ts})"


# ---------------------------------------------------------------------------
# Evaluation: bottom-up over assignment tables.
# ---------------------------------------------------------------------------


@dataclass
class _Table:
    """A set of valuations over a fixed, ordered tuple of variables."""

    variables: tuple[Variable, ...]
    rows: set[tuple[DataValue, ...]] = field(default_factory=set)

    def project(self, variables: Sequence[Variable]) -> "_Table":
        positions = [self.variables.index(v) for v in variables]
        return _Table(tuple(variables), {tuple(row[p] for p in positions) for row in self.rows})

    def expand(self, variables: Sequence[Variable], domain: Sequence[DataValue]) -> "_Table":
        """Cylindrify the table to a superset of variables over ``domain``."""
        variables = tuple(variables)
        missing = [v for v in variables if v not in self.variables]
        if not missing:
            return self.project(variables)
        rows: set[tuple[DataValue, ...]] = set()
        for row in self.rows:
            base = dict(zip(self.variables, row))
            for combo in itertools.product(domain, repeat=len(missing)):
                assignment = dict(base)
                assignment.update(zip(missing, combo))
                rows.add(tuple(assignment[v] for v in variables))
        if not self.rows and not self.variables:
            return _Table(variables, set())
        return _Table(variables, rows)

    def join(self, other: "_Table") -> "_Table":
        shared = [v for v in self.variables if v in other.variables]
        out_vars = tuple(self.variables) + tuple(v for v in other.variables if v not in self.variables)
        index: dict[tuple[DataValue, ...], list[tuple[DataValue, ...]]] = {}
        shared_other = [other.variables.index(v) for v in shared]
        for row in other.rows:
            key = tuple(row[p] for p in shared_other)
            index.setdefault(key, []).append(row)
        shared_self = [self.variables.index(v) for v in shared]
        extra_positions = [other.variables.index(v) for v in other.variables if v not in self.variables]
        rows: set[tuple[DataValue, ...]] = set()
        for row in self.rows:
            key = tuple(row[p] for p in shared_self)
            for match in index.get(key, ()):
                rows.add(row + tuple(match[p] for p in extra_positions))
        return _Table(out_vars, rows)


class FormulaEvaluator:
    """Evaluates formulas bottom-up over a fixed instance and domain."""

    def __init__(self, instance: Instance, domain: Iterable[DataValue]) -> None:
        self._instance = instance
        self._domain = tuple(sorted(set(domain), key=repr))

    @property
    def domain(self) -> tuple[DataValue, ...]:
        return self._domain

    def evaluate(
        self,
        formula: Formula,
        second_order: Mapping[str, frozenset[tuple[DataValue, ...]]] | None = None,
    ) -> _Table:
        """Return the table of satisfying valuations of ``formula``."""
        env = dict(second_order or {})
        return self._eval(formula, env)

    # -- dispatch -------------------------------------------------------------

    def _eval(self, formula: Formula, env: dict[str, frozenset[tuple[DataValue, ...]]]) -> _Table:
        if isinstance(formula, TrueFormula):
            return _Table((), {()})
        if isinstance(formula, FalseFormula):
            return _Table((), set())
        if isinstance(formula, Rel):
            return self._eval_rel(formula, env)
        if isinstance(formula, Eq):
            return self._eval_eq(formula)
        if isinstance(formula, Not):
            return self._eval_not(formula, env)
        if isinstance(formula, And):
            return self._eval_and(formula, env)
        if isinstance(formula, Or):
            return self._eval_or(formula, env)
        if isinstance(formula, Exists):
            return self._eval_exists(formula, env)
        if isinstance(formula, Forall):
            return self._eval_forall(formula, env)
        if isinstance(formula, Fixpoint):
            return self._eval_fixpoint(formula, env)
        raise TypeError(f"unknown formula node: {formula!r}")

    def _eval_rel(self, formula: Rel, env: dict[str, frozenset[tuple[DataValue, ...]]]) -> _Table:
        if formula.relation in env:
            rows_source: Iterable[tuple[DataValue, ...]] = env[formula.relation]
        elif formula.relation in self._instance.schema:
            rows_source = self._instance[formula.relation].tuples
        else:
            rows_source = ()
        variables: list[Variable] = []
        for term_ in formula.terms:
            if isinstance(term_, Variable) and term_ not in variables:
                variables.append(term_)
        rows: set[tuple[DataValue, ...]] = set()
        for row in rows_source:
            if len(row) != len(formula.terms):
                continue
            assignment: dict[Variable, DataValue] = {}
            ok = True
            for term_, value in zip(formula.terms, row):
                if isinstance(term_, Constant):
                    if term_.value != value:
                        ok = False
                        break
                else:
                    if term_ in assignment and assignment[term_] != value:
                        ok = False
                        break
                    assignment[term_] = value
            if ok:
                rows.add(tuple(assignment[v] for v in variables))
        return _Table(tuple(variables), rows)

    def _eval_eq(self, formula: Eq) -> _Table:
        left, right = formula.left, formula.right
        if isinstance(left, Constant) and isinstance(right, Constant):
            return _Table((), {()} if left.value == right.value else set())
        if isinstance(left, Variable) and isinstance(right, Constant):
            return _Table((left,), {(right.value,)})
        if isinstance(left, Constant) and isinstance(right, Variable):
            return _Table((right,), {(left.value,)})
        assert isinstance(left, Variable) and isinstance(right, Variable)
        if left == right:
            return _Table((left,), {(d,) for d in self._domain})
        return _Table((left, right), {(d, d) for d in self._domain})

    def _eval_not(self, formula: Not, env) -> _Table:
        inner = self._eval(formula.operand, env)
        variables = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
        inner = inner.expand(variables, self._domain)
        universe = set(itertools.product(self._domain, repeat=len(variables)))
        return _Table(variables, universe - inner.rows)

    def _eval_and(self, formula: And, env) -> _Table:
        result = _Table((), {()})
        for operand in formula.operands:
            result = result.join(self._eval(operand, env))
            if not result.rows:
                # Keep going just to collect the right variable set lazily;
                # an empty join stays empty, so we can short-circuit.
                variables = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
                return _Table(variables, set())
        return result

    def _eval_or(self, formula: Or, env) -> _Table:
        variables = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
        rows: set[tuple[DataValue, ...]] = set()
        for operand in formula.operands:
            table = self._eval(operand, env).expand(variables, self._domain)
            rows |= table.rows
        return _Table(variables, rows)

    def _eval_exists(self, formula: Exists, env) -> _Table:
        inner = self._eval(formula.operand, env)
        keep = tuple(v for v in inner.variables if v not in formula.variables)
        return inner.project(keep)

    def _eval_forall(self, formula: Forall, env) -> _Table:
        # forall x. phi  ===  not exists x. not phi
        rewritten = Not(Exists(formula.variables, Not(formula.operand)))
        return self._eval(rewritten, env)

    def _eval_fixpoint(self, formula: Fixpoint, env) -> _Table:
        arity = len(formula.variables)
        current: frozenset[tuple[DataValue, ...]] = frozenset()
        while True:
            inner_env = dict(env)
            inner_env[formula.recursion_relation] = current
            table = self._eval(formula.formula, inner_env)
            table = table.expand(formula.variables, self._domain)
            stage = {row for row in table.rows if len(row) == arity}
            new = frozenset(current | stage)
            if new == current:
                break
            current = new
        # Now treat the fixpoint applied to ``terms`` as an atom over `current`.
        atom = Rel("_fixpoint_result", formula.terms)
        saved = env.get("_fixpoint_result")
        env["_fixpoint_result"] = current
        try:
            return self._eval_rel(atom, env)
        finally:
            if saved is None:
                env.pop("_fixpoint_result", None)
            else:
                env["_fixpoint_result"] = saved


class FormulaQuery(Query):
    """A query given by a head tuple of variables and an FO/IFP formula."""

    def __init__(self, head: Sequence[Variable], formula: Formula) -> None:
        self._head = tuple(head)
        if not all(isinstance(v, Variable) for v in self._head):
            raise TypeError("query head must consist of variables")
        self._formula = formula

    @property
    def head(self) -> tuple[Variable, ...]:
        return self._head

    @property
    def formula(self) -> Formula:
        """The defining formula."""
        return self._formula

    @property
    def logic(self) -> QueryLogic:
        return QueryLogic.IFP if self._formula.uses_fixpoint() else QueryLogic.FO

    def relation_names(self) -> frozenset[str]:
        return self._formula.relation_names()

    def constants(self) -> frozenset[DataValue]:
        return self._formula.constants()

    def evaluate(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        """Evaluate via the set-at-a-time planner when the formula is safe.

        Range-restricted (safe) formulas are compiled once into scans, hash
        joins and anti-joins by :mod:`repro.query.planner`; formulas outside
        the safe fragment (top-level negation, ``forall``, fixpoints, domain-
        dependent equalities) fall back to :meth:`evaluate_naive`.
        """
        from repro.query.planner import plan_query

        plan = plan_query(self)
        if plan is not None:
            return plan.execute(instance)
        return self.evaluate_naive(instance)

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        """The bottom-up active-domain evaluator (the planner's oracle)."""
        domain = set(instance.active_domain()) | set(self.constants())
        evaluator = FormulaEvaluator(instance, domain)
        table = evaluator.evaluate(self._formula)
        table = table.expand(self._head, evaluator.domain)
        return frozenset(table.rows)

    def transform_atoms(self, transform: Callable[[Rel], Formula]) -> "FormulaQuery":
        """Return a copy whose relation atoms are rewritten via ``transform``."""
        return FormulaQuery(self._head, self._formula.transform_atoms(transform))

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self._head)
        return f"({head}) . {self._formula}"


def conjunction(operands: Iterable[Formula]) -> Formula:
    """Smart n-ary conjunction (drops trivial operands)."""
    flattened = [op for op in operands if not isinstance(op, TrueFormula)]
    if any(isinstance(op, FalseFormula) for op in flattened):
        return FalseFormula()
    if not flattened:
        return TrueFormula()
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def disjunction(operands: Iterable[Formula]) -> Formula:
    """Smart n-ary disjunction (drops trivial operands)."""
    flattened = [op for op in operands if not isinstance(op, FalseFormula)]
    if any(isinstance(op, TrueFormula) for op in flattened):
        return TrueFormula()
    if not flattened:
        return FalseFormula()
    if len(flattened) == 1:
        return flattened[0]
    return Or(tuple(flattened))
