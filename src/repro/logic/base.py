"""The common interface of all query languages.

A :class:`Query` maps a database instance to a set of answer tuples over its
*head* variables.  Publishing transducers embed queries of the three logics
``CQ``, ``FO`` and ``IFP``; the :class:`QueryLogic` enumeration orders them by
expressive power so that the classifier of :mod:`repro.core.classes` can
compute the smallest fragment containing a given transducer.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import FrozenSet

from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.logic.terms import Variable


class QueryLogic(enum.IntEnum):
    """The three query logics of the paper, ordered by expressiveness."""

    CQ = 1
    FO = 2
    IFP = 3

    def __str__(self) -> str:
        return self.name

    @staticmethod
    def join(*logics: "QueryLogic") -> "QueryLogic":
        """The least logic containing all the given logics."""
        return max(logics, default=QueryLogic.CQ)

    def includes(self, other: "QueryLogic") -> bool:
        """True when this logic is at least as expressive as ``other``."""
        return self >= other


class Query(ABC):
    """A relational query with an explicit tuple of head variables."""

    @property
    @abstractmethod
    def head(self) -> tuple[Variable, ...]:
        """The output (distinguished) variables, in order."""

    @property
    def arity(self) -> int:
        """Number of output columns."""
        return len(self.head)

    @property
    @abstractmethod
    def logic(self) -> QueryLogic:
        """The smallest logic of the paper this query belongs to."""

    @abstractmethod
    def evaluate(self, instance: Instance) -> FrozenSet[tuple[DataValue, ...]]:
        """Evaluate the query over ``instance`` and return the answer tuples."""

    @abstractmethod
    def relation_names(self) -> frozenset[str]:
        """The relation names referenced by the query."""

    @abstractmethod
    def constants(self) -> frozenset[DataValue]:
        """The constants mentioned in the query."""

    # -- generic helpers -----------------------------------------------------

    def is_boolean(self) -> bool:
        """True for Boolean (0-ary) queries."""
        return self.arity == 0

    def holds(self, instance: Instance) -> bool:
        """Evaluate a Boolean query: true iff the answer is non-empty."""
        return bool(self.evaluate(instance))
