"""Terms: variables and constants.

Terms are the leaves of every query language in this package.  They are
frozen dataclasses so they can be used as dictionary keys (valuations map
variables to data values) and members of sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.relational.domain import DataValue


@dataclass(frozen=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r})"


@dataclass(frozen=True)
class Constant:
    """A constant denoting a data value from the domain ``D``."""

    value: DataValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant({self.value!r})"


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]

#: A valuation maps variables to data values.
Valuation = Mapping[Variable, DataValue]


def term(value: object) -> Term:
    """Coerce a Python object into a term.

    Strings starting with a lowercase letter followed by letters/digits/_
    could denote either a variable or a constant; to avoid ambiguity, only
    existing :class:`Variable` / :class:`Constant` objects are passed through
    and *everything else is treated as a constant*.  Use :func:`var` for
    variables.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def vars_(*names: str) -> tuple[Variable, ...]:
    """Construct several variables at once: ``vars_("x", "y", "z")``."""
    return tuple(Variable(name) for name in names)


def const(value: DataValue) -> Constant:
    """Shorthand constructor for a constant."""
    return Constant(value)


def terms_of(values: Iterable[object]) -> tuple[Term, ...]:
    """Coerce an iterable of objects into a tuple of terms."""
    return tuple(term(value) for value in values)


def evaluate_term(t: Term, valuation: Valuation) -> DataValue:
    """Evaluate a term under a valuation.

    Raises ``KeyError`` when the term is an unbound variable; callers are
    expected to only evaluate terms whose variables are bound.
    """
    if isinstance(t, Constant):
        return t.value
    return valuation[t]


def substitute_term(t: Term, substitution: Mapping[Variable, Term]) -> Term:
    """Apply a variable-to-term substitution to a term."""
    if isinstance(t, Variable):
        return substitution.get(t, t)
    return t


def fresh_variable(base: str, taken: set[Variable]) -> Variable:
    """Return a variable named after ``base`` that does not occur in ``taken``."""
    candidate = Variable(base)
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = Variable(f"{base}_{counter}")
    taken.add(candidate)
    return candidate
