"""Text syntax for conjunctive queries and first-order formulas.

The formal constructions work with ASTs, but examples, tests and the
publishing-language front-ends read much better with a concrete syntax.  Two
small recursive-descent parsers are provided:

* :func:`parse_cq` parses Datalog-style conjunctive queries::

      ans(c, t) :- course(c, t, d), d = 'CS', c != 'cs101'

* :func:`parse_formula` parses first-order formulas::

      exists d. course(c, t, d) & d = 'CS' & ~(c = 'cs101')

Conventions: bare identifiers are **variables**, quoted strings and numeric
literals are **constants**.  The fixpoint operator of IFP has no concrete
syntax; build it with :class:`repro.logic.fo.Fixpoint` directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.logic.cq import Comparison, ConjunctiveQuery, RelationAtom
from repro.logic.fo import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    FormulaQuery,
    Not,
    Or,
    Rel,
    TrueFormula,
)
from repro.logic.terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised when a query or formula string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<neq>!=)
  | (?P<arrow>:-)
  | (?P<symbol>[(),.=~&|])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[_Token]) -> None:
        self._tokens = list(tokens)
        self._index = 0

    def peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r} at offset {token.position}")
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self._index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(stream: _TokenStream) -> Term:
    token = stream.next()
    if token.kind == "string":
        return Constant(token.text[1:-1])
    if token.kind == "number":
        text = token.text
        return Constant(float(text)) if "." in text else Constant(int(text))
    if token.kind == "name":
        if token.text in _KEYWORDS:
            raise ParseError(f"keyword {token.text!r} cannot be used as a term")
        return Variable(token.text)
    raise ParseError(f"expected a term but found {token.text!r} at offset {token.position}")


def _parse_term_list(stream: _TokenStream) -> tuple[Term, ...]:
    stream.expect("(")
    terms: list[Term] = []
    if not stream.accept(")"):
        terms.append(_parse_term(stream))
        while stream.accept(","):
            terms.append(_parse_term(stream))
        stream.expect(")")
    return tuple(terms)


# ---------------------------------------------------------------------------
# Conjunctive queries.
# ---------------------------------------------------------------------------


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a Datalog-style conjunctive query with ``=`` / ``!=`` literals."""
    stream = _TokenStream(_tokenize(text))
    head_token = stream.next()
    if head_token.kind != "name":
        raise ParseError("a conjunctive query must start with a head predicate")
    head_terms = _parse_term_list(stream)
    head_vars: list[Variable] = []
    for term in head_terms:
        if not isinstance(term, Variable):
            raise ParseError("CQ head arguments must be variables")
        head_vars.append(term)
    atoms: list[RelationAtom] = []
    comparisons: list[Comparison] = []
    if not stream.at_end():
        stream.expect(":-")
        while True:
            atoms_or_cmp = _parse_cq_literal(stream)
            if isinstance(atoms_or_cmp, RelationAtom):
                atoms.append(atoms_or_cmp)
            else:
                comparisons.append(atoms_or_cmp)
            if not stream.accept(","):
                break
    if not stream.at_end():
        extra = stream.next()
        raise ParseError(f"unexpected trailing input {extra.text!r} at offset {extra.position}")
    return ConjunctiveQuery(tuple(head_vars), tuple(atoms), tuple(comparisons))


def _parse_cq_literal(stream: _TokenStream) -> RelationAtom | Comparison:
    token = stream.peek()
    if token is None:
        raise ParseError("unexpected end of query body")
    if token.kind == "name":
        lookahead_index = stream._index + 1
        if lookahead_index < len(stream._tokens) and stream._tokens[lookahead_index].text == "(":
            name = stream.next().text
            return RelationAtom(name, _parse_term_list(stream))
    left = _parse_term(stream)
    operator = stream.next()
    if operator.text == "=":
        return Comparison(left, _parse_term(stream), negated=False)
    if operator.text == "!=":
        return Comparison(left, _parse_term(stream), negated=True)
    raise ParseError(f"expected '=' or '!=' but found {operator.text!r} at offset {operator.position}")


# ---------------------------------------------------------------------------
# First-order formulas.
# ---------------------------------------------------------------------------


def parse_formula(text: str) -> Formula:
    """Parse a first-order formula (``exists``/``forall``, ``&``, ``|``, ``~``)."""
    stream = _TokenStream(_tokenize(text))
    formula = _parse_quantified(stream)
    if not stream.at_end():
        extra = stream.next()
        raise ParseError(f"unexpected trailing input {extra.text!r} at offset {extra.position}")
    return formula


def parse_formula_query(head: Sequence[str], text: str) -> FormulaQuery:
    """Parse a formula and wrap it into a query with the given head variables."""
    return FormulaQuery(tuple(Variable(name) for name in head), parse_formula(text))


def _parse_quantified(stream: _TokenStream) -> Formula:
    token = stream.peek()
    if token is not None and token.kind == "name" and token.text in ("exists", "forall"):
        quantifier = stream.next().text
        variables: list[Variable] = []
        while True:
            name_token = stream.peek()
            if name_token is None or name_token.kind != "name" or name_token.text in _KEYWORDS:
                break
            variables.append(Variable(stream.next().text))
        if not variables:
            raise ParseError(f"{quantifier} needs at least one variable")
        stream.expect(".")
        body = _parse_quantified(stream)
        return Exists(tuple(variables), body) if quantifier == "exists" else Forall(tuple(variables), body)
    return _parse_or(stream)


def _parse_or(stream: _TokenStream) -> Formula:
    operands = [_parse_and(stream)]
    while stream.accept("|"):
        operands.append(_parse_and(stream))
    return operands[0] if len(operands) == 1 else Or(tuple(operands))


def _parse_and(stream: _TokenStream) -> Formula:
    operands = [_parse_unary(stream)]
    while stream.accept("&"):
        operands.append(_parse_unary(stream))
    return operands[0] if len(operands) == 1 else And(tuple(operands))


def _parse_unary(stream: _TokenStream) -> Formula:
    if stream.accept("~"):
        return Not(_parse_unary(stream))
    token = stream.peek()
    if token is None:
        raise ParseError("unexpected end of formula")
    if token.text == "(":
        stream.next()
        inner = _parse_quantified(stream)
        stream.expect(")")
        return inner
    if token.kind == "name" and token.text == "true":
        stream.next()
        return TrueFormula()
    if token.kind == "name" and token.text == "false":
        stream.next()
        return FalseFormula()
    if token.kind == "name" and token.text in ("exists", "forall"):
        return _parse_quantified(stream)
    if token.kind == "name":
        lookahead_index = stream._index + 1
        if lookahead_index < len(stream._tokens) and stream._tokens[lookahead_index].text == "(":
            name = stream.next().text
            return Rel(name, _parse_term_list(stream))
    left = _parse_term(stream)
    operator = stream.next()
    if operator.text == "=":
        return Eq(left, _parse_term(stream))
    if operator.text == "!=":
        return Not(Eq(left, _parse_term(stream)))
    raise ParseError(f"expected '=' or '!=' but found {operator.text!r} at offset {operator.position}")
