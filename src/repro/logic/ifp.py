"""Inflationary fixpoint queries (``IFP``).

``IFP`` extends ``FO`` with the inflationary fixpoint operator
``[mu+_{S,x}(phi(S,x))](t)`` (Section 2).  The :class:`Fixpoint` formula node
itself lives in :mod:`repro.logic.fo` so that a single evaluator handles both
logics; this module re-exports it and provides the standard IFP idioms used
throughout the paper and the benchmarks:

* transitive closure / reachability over a binary relation (the prerequisite
  hierarchy of the registrar example, Oracle's connect-by);
* same-generation, a classical query expressible in IFP and LinDatalog but
  not in FO (used for expressiveness benchmarks).
"""

from __future__ import annotations

from typing import Sequence

from repro.logic.fo import And, Eq, Exists, Fixpoint, Formula, FormulaQuery, Or, Rel
from repro.logic.terms import Term, Variable

__all__ = [
    "Fixpoint",
    "reachability_formula",
    "reachability_query",
    "same_generation_query",
    "transitive_closure_query",
]


def reachability_formula(
    edge_relation: str,
    source: Term,
    target: Term,
    recursion_relation: str = "_Reach",
) -> Formula:
    """Formula expressing "``target`` is reachable from ``source``".

    Reachability is along edges of the binary relation ``edge_relation`` and
    includes paths of length >= 1 as well as the trivial path (``source`` =
    ``target``).  This is the query the paper uses to separate FO from IFP
    classes (Theorem 4(3), Proposition 5).
    """
    x, y = Variable("_rx"), Variable("_ry")
    z = Variable("_rz")
    step = Or(
        (
            Rel(edge_relation, (x, y)),
            Exists((z,), And((Rel(recursion_relation, (x, z)), Rel(edge_relation, (z, y))))),
        )
    )
    closure = Fixpoint(recursion_relation, (x, y), step, (source, target))
    return Or((Eq(source, target), closure))


def transitive_closure_query(
    edge_relation: str,
    head: Sequence[Variable] | None = None,
    recursion_relation: str = "_TC",
) -> FormulaQuery:
    """The binary transitive-closure query over ``edge_relation``.

    Returns a :class:`FormulaQuery` with head ``(x, y)`` that evaluates to all
    pairs connected by a path of length >= 1.
    """
    if head is None:
        head = (Variable("x"), Variable("y"))
    x, y = Variable("_tx"), Variable("_ty")
    z = Variable("_tz")
    step = Or(
        (
            Rel(edge_relation, (x, y)),
            Exists((z,), And((Rel(recursion_relation, (x, z)), Rel(edge_relation, (z, y))))),
        )
    )
    closure = Fixpoint(recursion_relation, (x, y), step, tuple(head))
    return FormulaQuery(tuple(head), closure)


def reachability_query(
    edge_relation: str,
    source: Term,
    target: Term,
) -> FormulaQuery:
    """Boolean query: is ``target`` reachable from ``source``?"""
    return FormulaQuery((), reachability_formula(edge_relation, source, target))


def same_generation_query(
    edge_relation: str,
    head: Sequence[Variable] | None = None,
    recursion_relation: str = "_SG",
) -> FormulaQuery:
    """The same-generation query over a parent/child relation.

    ``sg(x, y)`` holds when ``x`` and ``y`` are the same node or have parents
    in the same generation.  It is a classical example of a query in IFP (and
    non-linear Datalog) used by the expressiveness benchmarks for Table III.
    """
    if head is None:
        head = (Variable("x"), Variable("y"))
    x, y = Variable("_sx"), Variable("_sy")
    xp, yp = Variable("_sxp"), Variable("_syp")
    base = Eq(x, y)
    step = Exists(
        (xp, yp),
        And(
            (
                Rel(edge_relation, (xp, x)),
                Rel(edge_relation, (yp, y)),
                Rel(recursion_relation, (xp, yp)),
            )
        ),
    )
    closure = Fixpoint(recursion_relation, (x, y), Or((base, step)), tuple(head))
    return FormulaQuery(tuple(head), closure)
