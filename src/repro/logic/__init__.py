"""Query logics embedded in publishing transducers: CQ, FO and IFP.

The paper parameterises publishing transducers by the relational query
language ``L`` used in transduction rules, with three choices (Section 2):

* **CQ** -- conjunctive queries with equality and inequality,
* **FO** -- first-order queries,
* **IFP** -- inflationary fixpoint queries.

This package implements abstract syntax, evaluation over a database instance
(active-domain semantics), and the satisfiability / containment / composition
machinery the static analyses of Section 5 need.
"""

from repro.logic.base import Query, QueryLogic
from repro.logic.cq import ConjunctiveQuery, RelationAtom, Comparison, UnionOfConjunctiveQueries
from repro.logic.fo import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    FormulaQuery,
    Not,
    Or,
    Rel,
    TrueFormula,
)
from repro.logic.ifp import Fixpoint
from repro.logic.parser import parse_cq, parse_formula, parse_formula_query
from repro.logic.terms import Constant, Term, Variable

__all__ = [
    "And",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "Eq",
    "Exists",
    "FalseFormula",
    "Fixpoint",
    "Forall",
    "Formula",
    "FormulaQuery",
    "Not",
    "Or",
    "Query",
    "QueryLogic",
    "Rel",
    "RelationAtom",
    "Term",
    "TrueFormula",
    "UnionOfConjunctiveQueries",
    "Variable",
    "parse_cq",
    "parse_formula",
    "parse_formula_query",
]
