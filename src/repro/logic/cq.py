"""Conjunctive queries with equality and inequality (the logic ``CQ``).

A conjunctive query is a set of relation atoms plus a set of (in)equality
comparisons over terms, with a designated tuple of head variables; all other
variables are implicitly existentially quantified.  This matches the paper's
``CQ`` -- conjunctive queries "with '=' and '!='" -- which is the logic of the
smallest transducer class ``PT(CQ, tuple, normal)`` and of the annotated-XSD,
RDB-mapping and TreeQL front-ends.

Besides evaluation, this module provides the syntactic machinery the static
analyses of Section 5 rely on:

* satisfiability by equivalence-class closure (Theorem 1(1));
* canonical ("frozen") databases for containment checks;
* composition of queries along transduction rules, used to analyse paths in
  the dependency graph (Theorem 1, Theorem 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.relational.domain import DataValue
from repro.relational.instance import Instance
from repro.logic.base import Query, QueryLogic
from repro.logic.terms import (
    Constant,
    Term,
    Variable,
    evaluate_term,
    fresh_variable,
    substitute_term,
    terms_of,
)


@dataclass(frozen=True)
class RelationAtom:
    """An atom ``R(t1, ..., tk)`` over relation ``R``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", terms_of(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """Variables occurring in the atom, with repetitions, in order."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset[DataValue]:
        return frozenset(t.value for t in self.terms if isinstance(t, Constant))

    def substitute(self, substitution: Mapping[Variable, Term]) -> "RelationAtom":
        return RelationAtom(self.relation, tuple(substitute_term(t, substitution) for t in self.terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Comparison:
    """An equality ``t1 = t2`` or inequality ``t1 != t2`` between terms."""

    left: Term
    right: Term
    negated: bool = False

    def variables(self) -> tuple[Variable, ...]:
        return tuple(t for t in (self.left, self.right) if isinstance(t, Variable))

    def constants(self) -> frozenset[DataValue]:
        return frozenset(t.value for t in (self.left, self.right) if isinstance(t, Constant))

    def substitute(self, substitution: Mapping[Variable, Term]) -> "Comparison":
        return Comparison(
            substitute_term(self.left, substitution),
            substitute_term(self.right, substitution),
            self.negated,
        )

    def holds(self, valuation: Mapping[Variable, DataValue]) -> bool:
        """Evaluate the comparison under a (total enough) valuation."""
        left = evaluate_term(self.left, valuation)
        right = evaluate_term(self.right, valuation)
        return (left != right) if self.negated else (left == right)

    def is_ground(self, valuation: Mapping[Variable, DataValue]) -> bool:
        """True when both sides are constants or bound by ``valuation``."""
        for side in (self.left, self.right):
            if isinstance(side, Variable) and side not in valuation:
                return False
        return True

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{str(self.left)} {op} {str(self.right)}"


def equality(left: Term, right: Term) -> Comparison:
    """Convenience constructor for an equality comparison."""
    return Comparison(left, right, negated=False)


def inequality(left: Term, right: Term) -> Comparison:
    """Convenience constructor for an inequality comparison."""
    return Comparison(left, right, negated=True)


class _UnionFind:
    """Union-find over terms, used for satisfiability and reduction."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, item: Term) -> Term:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Prefer constants as representatives so classes expose their value.
            if isinstance(ra, Constant):
                self._parent[rb] = ra
            else:
                self._parent[ra] = rb

    def classes(self) -> dict[Term, set[Term]]:
        groups: dict[Term, set[Term]] = {}
        for item in list(self._parent):
            groups.setdefault(self.find(item), set()).add(item)
        return groups


class ConjunctiveQuery(Query):
    """A conjunctive query ``head :- atoms, comparisons`` with ``=`` and ``!=``."""

    def __init__(
        self,
        head: Sequence[Variable],
        atoms: Iterable[RelationAtom] = (),
        comparisons: Iterable[Comparison] = (),
    ) -> None:
        self._head = tuple(head)
        if not all(isinstance(v, Variable) for v in self._head):
            raise TypeError("CQ head must consist of variables only")
        self._atoms = tuple(atoms)
        self._comparisons = tuple(comparisons)

    # -- structure ------------------------------------------------------------

    @property
    def head(self) -> tuple[Variable, ...]:
        return self._head

    @property
    def atoms(self) -> tuple[RelationAtom, ...]:
        """The relation atoms of the body."""
        return self._atoms

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        """The (in)equality comparisons of the body."""
        return self._comparisons

    @property
    def logic(self) -> QueryLogic:
        return QueryLogic.CQ

    def variables(self) -> frozenset[Variable]:
        """All variables of the query (head and body)."""
        found: set[Variable] = set(self._head)
        for atom in self._atoms:
            found.update(atom.variables())
        for comparison in self._comparisons:
            found.update(comparison.variables())
        return frozenset(found)

    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that are not part of the head."""
        return self.variables() - frozenset(self._head)

    def relation_names(self) -> frozenset[str]:
        return frozenset(atom.relation for atom in self._atoms)

    def constants(self) -> frozenset[DataValue]:
        found: set[DataValue] = set()
        for atom in self._atoms:
            found |= atom.constants()
        for comparison in self._comparisons:
            found |= comparison.constants()
        return frozenset(found)

    def has_inequalities(self) -> bool:
        """True when the query uses ``!=``."""
        return any(c.negated for c in self._comparisons)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        """Evaluate the query via the set-at-a-time planner when possible.

        Range-restricted queries are compiled once (the plan is cached on the
        query) into scans, hash joins and selections by
        :mod:`repro.query.planner` and evaluated at join-size cost; genuinely
        unsafe queries fall back to :meth:`evaluate_naive`, whose
        active-domain semantics remains the executable specification.
        """
        from repro.query.planner import plan_query

        plan = plan_query(self)
        if plan is not None:
            return plan.execute(instance)
        return self.evaluate_naive(instance)

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        """Evaluate the query by tuple-at-a-time joins over the body atoms.

        Active-domain semantics: a variable not bound by any relation atom is
        bound through the equality constraints when possible, and otherwise
        ranges over the active domain of the instance extended with the
        query's constants.  This is the reference evaluator the planner is
        differentially tested against.
        """
        valuations: list[dict[Variable, DataValue]] = [{}]
        pending = list(self._comparisons)

        for atom in self._atoms:
            if atom.relation not in instance.schema:
                return frozenset()
            relation = instance[atom.relation]
            if relation.arity != atom.arity:
                return frozenset()
            new_valuations: list[dict[Variable, DataValue]] = []
            for valuation in valuations:
                for row in relation:
                    extended = self._match_atom(atom, row, valuation)
                    if extended is not None:
                        new_valuations.append(extended)
            valuations = new_valuations
            if not valuations:
                return frozenset()
            valuations, pending = self._apply_ground_comparisons(valuations, pending)
            if not valuations:
                return frozenset()

        valuations = self._bind_remaining_variables(instance, valuations, pending)
        answers = set()
        for valuation in valuations:
            if all(c.holds(valuation) for c in self._comparisons):
                try:
                    answers.add(tuple(valuation[v] for v in self._head))
                except KeyError:
                    # A head variable is genuinely unconstrained; the query is
                    # unsafe on this instance and yields no finite answer row
                    # for that valuation.
                    continue
        return frozenset(answers)

    @staticmethod
    def _match_atom(
        atom: RelationAtom,
        row: tuple[DataValue, ...],
        valuation: dict[Variable, DataValue],
    ) -> dict[Variable, DataValue] | None:
        extended = dict(valuation)
        for term, value in zip(atom.terms, row):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                bound = extended.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    extended[term] = value
                elif bound != value:
                    return None
        return extended

    @staticmethod
    def _apply_ground_comparisons(
        valuations: list[dict[Variable, DataValue]],
        pending: list[Comparison],
    ) -> tuple[list[dict[Variable, DataValue]], list[Comparison]]:
        if not valuations:
            return valuations, pending
        sample = valuations[0]
        ground = [c for c in pending if c.is_ground(sample)]
        if not ground:
            return valuations, pending
        remaining = [c for c in pending if not c.is_ground(sample)]
        filtered = [v for v in valuations if all(c.holds(v) for c in ground if c.is_ground(v))]
        return filtered, remaining

    def _bind_remaining_variables(
        self,
        instance: Instance,
        valuations: list[dict[Variable, DataValue]],
        pending: list[Comparison],
    ) -> list[dict[Variable, DataValue]]:
        needed = set(self._head)
        for comparison in pending:
            needed.update(comparison.variables())
        atom_bound = set()
        for atom in self._atoms:
            atom_bound.update(atom.variables())
        free = [v for v in needed if v not in atom_bound]
        if not free:
            return valuations

        # First propagate equalities of the form x = c / x = y where one side
        # is determined; this covers the common "x = 'c'" pattern of the paper
        # without blowing up over the active domain.
        results: list[dict[Variable, DataValue]] = []
        domain = list(instance.active_domain() | self.constants())
        for valuation in valuations:
            results.extend(self._expand_free(dict(valuation), list(free), domain))
        return results

    def _expand_free(
        self,
        valuation: dict[Variable, DataValue],
        free: list[Variable],
        domain: list[DataValue],
    ) -> list[dict[Variable, DataValue]]:
        free = [v for v in free if v not in valuation]
        changed = True
        while changed:
            changed = False
            for comparison in self._comparisons:
                if comparison.negated:
                    continue
                left, right = comparison.left, comparison.right
                lval = self._resolve(left, valuation)
                rval = self._resolve(right, valuation)
                if lval is _UNBOUND and rval is not _UNBOUND and isinstance(left, Variable):
                    valuation[left] = rval
                    changed = True
                elif rval is _UNBOUND and lval is not _UNBOUND and isinstance(right, Variable):
                    valuation[right] = lval
                    changed = True
        still_free = [v for v in free if v not in valuation]
        if not still_free:
            return [valuation]
        expansions: list[dict[Variable, DataValue]] = []
        for combo in itertools.product(domain, repeat=len(still_free)):
            extended = dict(valuation)
            extended.update(zip(still_free, combo))
            expansions.append(extended)
        return expansions

    @staticmethod
    def _resolve(term: Term, valuation: Mapping[Variable, DataValue]):
        if isinstance(term, Constant):
            return term.value
        return valuation.get(term, _UNBOUND)

    # -- satisfiability (Theorem 1(1)) -----------------------------------------

    def is_satisfiable(self) -> bool:
        """Decide satisfiability of the query in PTIME.

        Following the proof of Theorem 1(1): build the equivalence classes of
        terms induced by the equality comparisons and check that no class
        contains two distinct constants and that no inequality relates two
        terms of the same class.  Relation atoms never cause unsatisfiability
        because an instance making them true can always be constructed.
        """
        uf = _UnionFind()
        for term_ in self._all_terms():
            uf.find(term_)
        for comparison in self._comparisons:
            if not comparison.negated:
                uf.union(comparison.left, comparison.right)
        # (i) two distinct constants in one class
        class_constant: dict[Term, DataValue] = {}
        for term_ in self._all_terms():
            if isinstance(term_, Constant):
                root = uf.find(term_)
                if root in class_constant and class_constant[root] != term_.value:
                    return False
                class_constant[root] = term_.value
        # (ii)/(iii) an inequality within one equivalence class
        for comparison in self._comparisons:
            if comparison.negated and uf.find(comparison.left) == uf.find(comparison.right):
                return False
        return True

    def _all_terms(self) -> Iterable[Term]:
        for variable in self._head:
            yield variable
        for atom in self._atoms:
            yield from atom.terms
        for comparison in self._comparisons:
            yield comparison.left
            yield comparison.right

    def equality_classes(self) -> dict[Term, set[Term]]:
        """Equivalence classes of terms induced by the equality comparisons."""
        uf = _UnionFind()
        for term_ in self._all_terms():
            uf.find(term_)
        for comparison in self._comparisons:
            if not comparison.negated:
                uf.union(comparison.left, comparison.right)
        return uf.classes()

    # -- syntactic transformations ---------------------------------------------

    def substitute(self, substitution: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to head and body (head terms must stay variables)."""
        new_head = []
        extra_comparisons: list[Comparison] = []
        for variable in self._head:
            image = substitution.get(variable, variable)
            if isinstance(image, Variable):
                new_head.append(image)
            else:
                # A head variable mapped to a constant is kept as a variable
                # constrained to equal that constant, so the head stays clean.
                new_head.append(variable)
                extra_comparisons.append(equality(variable, image))
        return ConjunctiveQuery(
            tuple(new_head),
            tuple(atom.substitute(substitution) for atom in self._atoms),
            tuple(c.substitute(substitution) for c in self._comparisons) + tuple(extra_comparisons),
        )

    def rename_apart(self, taken: set[Variable]) -> "ConjunctiveQuery":
        """Rename every variable so that none occurs in ``taken``."""
        substitution: dict[Variable, Term] = {}
        for variable in sorted(self.variables(), key=lambda v: v.name):
            substitution[variable] = fresh_variable(variable.name, taken)
        return self.substitute(substitution)

    def conjoin(self, other: "ConjunctiveQuery", head: Sequence[Variable] | None = None) -> "ConjunctiveQuery":
        """Conjoin two queries sharing variables, with an optional new head."""
        return ConjunctiveQuery(
            tuple(head) if head is not None else self._head,
            self._atoms + other.atoms,
            self._comparisons + other.comparisons,
        )

    def with_head(self, head: Sequence[Variable]) -> "ConjunctiveQuery":
        """Return a copy with a different head."""
        return ConjunctiveQuery(tuple(head), self._atoms, self._comparisons)

    def compose(self, relation: str, inner: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """Unfold every occurrence of ``relation`` using the query ``inner``.

        Each atom ``relation(t1, ..., tk)`` is replaced by the body of
        ``inner`` with ``inner``'s head variables unified with ``t1..tk`` and
        its existential variables renamed apart.  This is the query
        composition used to analyse paths of the dependency graph in the
        emptiness and equivalence procedures of Section 5.
        """
        if len(inner.head) != self._relation_arity(relation):
            raise ValueError(
                f"cannot compose: {relation!r} has arity {self._relation_arity(relation)} "
                f"but the inner query has head width {len(inner.head)}"
            )
        taken = set(self.variables())
        atoms: list[RelationAtom] = []
        comparisons: list[Comparison] = list(self._comparisons)
        for atom in self._atoms:
            if atom.relation != relation:
                atoms.append(atom)
                continue
            renamed = inner.rename_apart(taken)
            unifier: dict[Variable, Term] = dict(zip(renamed.head, atom.terms))
            unfolded = renamed.substitute(unifier)
            atoms.extend(unfolded.atoms)
            comparisons.extend(unfolded.comparisons)
            # Head variables of the renamed query that were substituted by a
            # constant need the corresponding equality retained; substitute()
            # already added it to `unfolded.comparisons`.
        return ConjunctiveQuery(self._head, tuple(atoms), tuple(comparisons))

    def _relation_arity(self, relation: str) -> int:
        for atom in self._atoms:
            if atom.relation == relation:
                return atom.arity
        raise ValueError(f"relation {relation!r} does not occur in the query")

    def canonical_instance(
        self,
        schema,
        variable_values: Mapping[Variable, DataValue] | None = None,
        prefix: str = "_v",
    ) -> tuple[Instance, dict[Variable, DataValue]]:
        """Freeze the query into its canonical database.

        Every variable is mapped to a fresh constant (or to the value supplied
        in ``variable_values``); equalities are honoured by mapping a whole
        equivalence class to the same value.  Returns the frozen instance over
        ``schema`` and the valuation used.
        """
        classes = self.equality_classes()
        valuation: dict[Variable, DataValue] = dict(variable_values or {})
        class_value: dict[Term, DataValue] = {}
        counter = itertools.count()
        for root, members in classes.items():
            constants = [m.value for m in members if isinstance(m, Constant)]
            preset = [valuation[m] for m in members if isinstance(m, Variable) and m in valuation]
            if constants:
                value = constants[0]
            elif preset:
                value = preset[0]
            else:
                value = f"{prefix}{next(counter)}"
            class_value[root] = value
        uf_lookup = {}
        for root, members in classes.items():
            for member in members:
                uf_lookup[member] = class_value[root]
        for variable in self.variables():
            if variable not in valuation:
                valuation[variable] = uf_lookup.get(variable, f"{prefix}{next(counter)}")
        data: dict[str, set[tuple[DataValue, ...]]] = {name: set() for name in schema}
        for atom in self._atoms:
            row = tuple(
                t.value if isinstance(t, Constant) else valuation[t] for t in atom.terms
            )
            data.setdefault(atom.relation, set()).add(row)
        return Instance.from_dict(
            {k: v for k, v in data.items() if v or k in schema}, schema
        ), valuation

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self._head)
        body = ", ".join(
            [str(a) for a in self._atoms] + [str(c) for c in self._comparisons]
        )
        return f"ans({head}) :- {body}" if body else f"ans({head}) :- true"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._head == other._head
            and set(self._atoms) == set(other._atoms)
            and set(self._comparisons) == set(other._comparisons)
        )

    def __hash__(self) -> int:
        return hash((self._head, frozenset(self._atoms), frozenset(self._comparisons)))


class UnionOfConjunctiveQueries(Query):
    """A union of conjunctive queries (UCQ), all with the same head width.

    Proposition 6(1): non-recursive transducers in ``PTnr(CQ, tuple, O)``
    capture exactly UCQ when treated as relational queries; this class is the
    target of that translation.
    """

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]) -> None:
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        width = len(disjuncts[0].head)
        if any(len(q.head) != width for q in disjuncts):
            raise ValueError("all UCQ disjuncts must have the same head width")
        self._disjuncts = disjuncts

    @property
    def disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        """The CQ disjuncts."""
        return self._disjuncts

    @property
    def head(self) -> tuple[Variable, ...]:
        return self._disjuncts[0].head

    @property
    def logic(self) -> QueryLogic:
        return QueryLogic.CQ

    def evaluate(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        from repro.query.planner import plan_query

        plan = plan_query(self)
        if plan is not None:
            return plan.execute(instance)
        answers: set[tuple[DataValue, ...]] = set()
        for disjunct in self._disjuncts:
            answers |= disjunct.evaluate(instance)
        return frozenset(answers)

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple[DataValue, ...]]:
        """Union of the disjuncts' naive evaluations (the planner's oracle)."""
        answers: set[tuple[DataValue, ...]] = set()
        for disjunct in self._disjuncts:
            answers |= disjunct.evaluate_naive(instance)
        return frozenset(answers)

    def relation_names(self) -> frozenset[str]:
        names: set[str] = set()
        for disjunct in self._disjuncts:
            names |= disjunct.relation_names()
        return frozenset(names)

    def constants(self) -> frozenset[DataValue]:
        values: set[DataValue] = set()
        for disjunct in self._disjuncts:
            values |= disjunct.constants()
        return frozenset(values)

    def is_satisfiable(self) -> bool:
        """A UCQ is satisfiable iff one of its disjuncts is."""
        return any(d.is_satisfiable() for d in self._disjuncts)

    def __str__(self) -> str:
        return " UNION ".join(str(d) for d in self._disjuncts)


class _UnboundSentinel:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unbound>"


_UNBOUND = _UnboundSentinel()
