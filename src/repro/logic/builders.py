"""Convenience builders bridging the query representations.

These helpers keep the examples, front-ends and tests terse: building the
constant/empty queries used by several proof constructions, converting a CQ to
an equivalent FO formula (needed when a CQ-defined view has to be embedded in
an FO/IFP context such as the transduction translations of Theorem 4), and
constructing common query shapes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.relational.domain import DataValue
from repro.logic.cq import Comparison, ConjunctiveQuery, RelationAtom, equality, inequality
from repro.logic.fo import And, Eq, Exists, Formula, FormulaQuery, Not, Rel, TrueFormula, conjunction
from repro.logic.terms import Constant, Term, Variable, term, terms_of, var


def atom(relation: str, *terms: object) -> RelationAtom:
    """Build a relation atom, coercing raw Python values into constants."""
    return RelationAtom(relation, terms_of(terms))


def cq(
    head: Sequence[str | Variable],
    atoms: Iterable[RelationAtom] = (),
    equalities: Iterable[tuple[object, object]] = (),
    inequalities: Iterable[tuple[object, object]] = (),
) -> ConjunctiveQuery:
    """Build a conjunctive query from loosely-typed pieces."""
    head_vars = tuple(v if isinstance(v, Variable) else var(v) for v in head)
    comparisons: list[Comparison] = []
    for left, right in equalities:
        comparisons.append(equality(term(left) if not isinstance(left, (Variable, Constant)) else left,
                                    term(right) if not isinstance(right, (Variable, Constant)) else right))
    for left, right in inequalities:
        comparisons.append(inequality(term(left) if not isinstance(left, (Variable, Constant)) else left,
                                      term(right) if not isinstance(right, (Variable, Constant)) else right))
    return ConjunctiveQuery(head_vars, tuple(atoms), tuple(comparisons))


def empty_cq(head: Sequence[str | Variable] = ()) -> ConjunctiveQuery:
    """A CQ that returns the empty set on every instance.

    The paper writes this query as ``(x = 'c') and not (x = 'c')``; here it is
    the contradiction ``x = '0' and x != '0'`` over a fresh variable.  It is
    used by the membership reduction of Proposition 2 and by tests.
    """
    head_vars = tuple(v if isinstance(v, Variable) else var(v) for v in head)
    witness = head_vars[0] if head_vars else var("_w")
    return ConjunctiveQuery(
        head_vars,
        (),
        (equality(witness, Constant("0")), inequality(witness, Constant("0"))),
    )


def constant_cq(values: Sequence[DataValue], head: Sequence[str | Variable] | None = None) -> ConjunctiveQuery:
    """A CQ returning the single constant tuple ``values`` on every instance."""
    if head is None:
        head = [f"c{i}" for i in range(len(values))]
    head_vars = tuple(v if isinstance(v, Variable) else var(v) for v in head)
    comparisons = tuple(equality(v, Constant(value)) for v, value in zip(head_vars, values))
    return ConjunctiveQuery(head_vars, (), comparisons)


def register_atom(tag: str | None, *terms: object) -> RelationAtom:
    """An atom over the parent register.

    ``register_atom(None, x, y)`` refers to the generic register relation
    ``Reg``; ``register_atom("course", x, y)`` refers to ``Reg_course``, the
    register of a parent tagged ``course`` (both names resolve to the same
    relation at runtime).
    """
    name = "Reg" if tag is None else f"Reg_{tag}"
    return RelationAtom(name, terms_of(terms))


def cq_to_formula(query: ConjunctiveQuery) -> Formula:
    """Translate a CQ body into an equivalent FO formula over the same head."""
    conjuncts: list[Formula] = []
    for a in query.atoms:
        conjuncts.append(Rel(a.relation, a.terms))
    for comparison in query.comparisons:
        eq = Eq(comparison.left, comparison.right)
        conjuncts.append(Not(eq) if comparison.negated else eq)
    body: Formula = conjunction(conjuncts) if conjuncts else TrueFormula()
    existential = tuple(sorted(query.existential_variables(), key=lambda v: v.name))
    if existential:
        body = Exists(existential, body)
    return body


def cq_to_formula_query(query: ConjunctiveQuery) -> FormulaQuery:
    """Wrap :func:`cq_to_formula` into a :class:`FormulaQuery` with the same head."""
    return FormulaQuery(query.head, cq_to_formula(query))
