"""The bytes-native publish path: serving-scenario speedups over re-rendering.

The serialization PR closes the end-to-end publish gap: ``output="bytes"``
now renders straight from the memoised expansions through byte templates,
interned character data and a rendered-span cache, instead of re-walking an
event stream (or a tree) on every request.  This module measures the three
scenarios that path serves, against what the pre-PR serialised-output path
paid for the same request:

* **steady-state full publish** -- a server answering repeated ``GET
  /publish`` requests for an unchanged source.  Baseline: one full
  event-streamed render per request (:func:`repro.serve.publish_document` on
  a warm plan -- the pre-PR cost of every serialised response).  New path:
  ``server.publish(output="bytes")``, which is a rendered-document handoff
  after the first request.  **Asserted >= 3x.**

* **republish after a delta** -- a commit arrives, the next request wants
  the new document.  Baseline: ``apply_delta`` + a full re-render, the
  pre-PR cost of a serialised response to a changed source.  New path:
  ``handle.commit`` + ``publish(output="bytes", maintenance="incremental")``,
  which migrates the rendered-span cache and re-renders only invalidated
  spans.  **Asserted >= 3x.**

* **truly cold first render** -- a fresh plan's very first publish.  Both
  paths pay the full expansion evaluation here (the shared floor is the
  query engine, not serialisation), so the bytes path wins only the
  serialiser's share.  Reported, not asserted.

Every scenario asserts byte identity between the two sides before timing
ratios mean anything.  As with the other benchmarks the module doubles as a
script -- ``python benchmarks/bench_publish_bytes.py [--quick]`` prints a
JSON report -- which is what ``run_all.py`` and the CI smoke step use.
"""

from __future__ import annotations

import json
import sys
import time

from repro.engine import compile_plan
from repro.relational.delta import Delta
from repro.serve import ViewServer, publish_document
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
)

#: The acceptance threshold of the serialization PR's serving scenarios.
MIN_PUBLISH_SPEEDUP = 3.0


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _best_of(fn, repeats: int) -> float:
    return min(_time(fn)[1] for _ in range(repeats))


def measure_steady_state(
    num_courses: int = 150, iterations: int = 30, repeats: int = 3
) -> dict:
    """Repeated publishes of an unchanged source: re-render vs handoff."""
    tau = tau1_prerequisite_hierarchy()
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)

    server = ViewServer(max_nodes=10**7)
    server.register_view("tau1", tau)
    server.attach(instance, name="reg", encoded=True)
    baseline_plan = compile_plan(tau, max_nodes=10**7)

    served = server.publish("tau1", output="bytes")
    rendered = publish_document(baseline_plan, instance)
    assert served == rendered  # byte identity before any ratio

    def old_world():
        for _ in range(iterations):
            publish_document(baseline_plan, instance)

    def bytes_path():
        for _ in range(iterations):
            server.publish("tau1", output="bytes")

    old_world()  # warm both sides (expansion memos, rendered spans)
    bytes_path()
    old_seconds = _best_of(old_world, repeats)
    new_seconds = _best_of(bytes_path, repeats)
    return {
        "num_courses": num_courses,
        "iterations": iterations,
        "document_chars": len(served),
        "rerender_seconds": old_seconds,
        "bytes_path_seconds": new_seconds,
        "rerender_over_bytes_ratio": old_seconds / new_seconds,
    }


def measure_republish_after_delta(num_courses: int = 150, commits: int = 10) -> dict:
    """Per-commit serialised responses: full re-render vs cached republish."""
    tau = tau1_prerequisite_hierarchy()
    base = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)
    deltas = [
        Delta.insert("course", (f"cs9{index:03d}", f"Topics {index}", "CS"))
        for index in range(commits)
    ]

    server = ViewServer(max_nodes=10**7)
    server.register_view("tau1", tau)
    handle = server.attach(base, name="reg", encoded=True)
    server.publish("tau1", output="bytes", maintenance="incremental")  # seed the chain

    def serve_commits():
        documents = []
        for delta in deltas:
            handle.commit(delta)
            documents.append(
                server.publish("tau1", output="bytes", maintenance="incremental")
            )
        return documents

    documents, new_seconds = _time(serve_commits)

    # The pre-PR consumer: every commit forces a full render of the new
    # version (serialised outputs had no incremental path to speak of).
    baseline_plan = compile_plan(tau, max_nodes=10**7)
    publish_document(baseline_plan, base)  # warm the plan on the base version

    def rerender_commits():
        instance = base
        documents = []
        for delta in deltas:
            instance = instance.apply_delta(delta)
            documents.append(publish_document(baseline_plan, instance))
        return documents

    oracle_documents, old_seconds = _time(rerender_commits)
    assert documents == oracle_documents  # byte identity along the chain
    return {
        "num_courses": num_courses,
        "commits": commits,
        "rerender_seconds": old_seconds,
        "incremental_bytes_seconds": new_seconds,
        "rerender_over_incremental_ratio": old_seconds / new_seconds,
    }


def measure_cold_render(num_courses: int = 150, repeats: int = 3) -> dict:
    """A fresh plan's first publish: both sides pay the evaluation floor."""
    tau = tau1_prerequisite_hierarchy()
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)

    def cold_document():
        return publish_document(compile_plan(tau, max_nodes=10**7), instance)

    def cold_bytes():
        return compile_plan(tau, max_nodes=10**7).publish_bytes(
            instance, max_nodes=10**7
        )

    assert cold_bytes() == cold_document()
    old_seconds = _best_of(cold_document, repeats)
    new_seconds = _best_of(cold_bytes, repeats)
    return {
        "num_courses": num_courses,
        "event_render_seconds": old_seconds,
        "bytes_render_seconds": new_seconds,
        "cold_render_ratio": old_seconds / new_seconds,
    }


def test_steady_state_publish_speedup(benchmark):
    """The acceptance criterion: >= 3x on cache-hot full publishes."""

    def run():
        return measure_steady_state(100, iterations=15)

    report = benchmark.pedantic(run, rounds=1, iterations=1) if hasattr(
        benchmark, "pedantic"
    ) else run()
    if report is None:  # pragma: no cover - benchmark-disable quirk
        report = run()
    benchmark.extra_info.update(report)
    assert report["rerender_over_bytes_ratio"] >= MIN_PUBLISH_SPEEDUP


def test_republish_after_delta_speedup(benchmark):
    """The acceptance criterion: >= 3x on per-commit serialised responses."""

    def run():
        return measure_republish_after_delta(100, commits=8)

    report = benchmark.pedantic(run, rounds=1, iterations=1) if hasattr(
        benchmark, "pedantic"
    ) else run()
    if report is None:  # pragma: no cover - benchmark-disable quirk
        report = run()
    benchmark.extra_info.update(report)
    assert report["rerender_over_incremental_ratio"] >= MIN_PUBLISH_SPEEDUP


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    steady = measure_steady_state(
        80 if quick else 150, iterations=15 if quick else 30
    )
    republish = measure_republish_after_delta(
        80 if quick else 150, commits=6 if quick else 10
    )
    cold = measure_cold_render(80 if quick else 150)
    report = {
        "benchmark": "bench_publish_bytes",
        "mode": "quick" if quick else "full",
        "steady_state_publish": steady,
        "republish_after_delta": republish,
        "cold_render": cold,
    }
    print(json.dumps(report, indent=2))
    failed = False
    if steady["rerender_over_bytes_ratio"] < MIN_PUBLISH_SPEEDUP:
        print(
            f"FAIL: steady-state bytes publish only "
            f"{steady['rerender_over_bytes_ratio']:.1f}x over re-rendering "
            f"(required: {MIN_PUBLISH_SPEEDUP}x)",
            file=sys.stderr,
        )
        failed = True
    if republish["rerender_over_incremental_ratio"] < MIN_PUBLISH_SPEEDUP:
        print(
            f"FAIL: republish-after-delta only "
            f"{republish['rerender_over_incremental_ratio']:.1f}x over full "
            f"re-rendering (required: {MIN_PUBLISH_SPEEDUP}x)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
