"""Table I / Figures 2-6: the publishing-language front-ends.

For every language row of Table I the benchmark compiles the example view
(the Figures 2-6 views where the paper shows one), checks that the compiled
transducer falls inside the class the paper assigns to the language, and
times its evaluation over the registrar database.
"""

from __future__ import annotations

import pytest

from repro.core import classify, publish
from repro.languages import TABLE_I


@pytest.mark.parametrize("entry", TABLE_I, ids=lambda e: f"{e.vendor}-{e.language}".replace(" ", "_"))
def test_language_compile_and_publish(benchmark, entry, registrar_medium):
    compiled = entry.build_example()
    # Reproduction check: the compiled view lies inside the Table I class.
    assert entry.expected_class.contains(classify(compiled))
    tree = benchmark(lambda: publish(compiled, registrar_medium, max_nodes=500_000))
    assert tree.size() > 1


def test_table1_classification_matrix():
    """Regenerate Table I as a classification matrix (no timing)."""
    rows = []
    for entry in TABLE_I:
        compiled = entry.build_example()
        rows.append((entry.vendor, entry.language, str(entry.expected_class), str(classify(compiled))))
    # Only DBMS_XMLGEN and ATG are recursive; every observed class is within
    # the declared one.
    recursive = {row[1] for row in rows if "PTnr" not in row[2]}
    assert recursive == {"DBMS_XMLGEN", "ATG"}
    assert len(rows) == len(TABLE_I)
