"""Compile-once/run-many: the engine's batch API against cold evaluation.

The ISSUE-1 acceptance benchmark.  Three comparisons on one machine:

* ``cold``: 50 registrar instances through 50 independent plans -- the cost a
  caller pays when re-compiling on every request (the pre-engine behaviour of
  ``publish``);
* ``interpreted``: the same batch through the literal Section 3 interpreter
  (:class:`TransducerRuntime`), which re-extends the instance at every node;
* ``batched``: one compiled plan, streamed over the batch (``repro.serve.publish_stream``) with
  the shared memo cache.

Every timed run asserts the batched trees equal the cold trees, so the
benchmark is also a correctness check.  The measured cold/batched and
interpreted/batched ratios are attached to the pytest-benchmark JSON via
``extra_info`` (run with ``--benchmark-json=...`` to export them).
"""

from __future__ import annotations

import time

import pytest

from repro.core.runtime import TransducerRuntime
from repro.engine import Engine, compile_plan
from repro.serve import publish_stream
from repro.workloads.blowup import (
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
)

BATCH_SIZE = 50
MAX_NODES = 2_000_000


def _publish_cold(transducer, instances):
    """One fresh plan per instance: the compile-per-call baseline."""
    return [
        compile_plan(transducer, max_nodes=MAX_NODES).publish(instance)
        for instance in instances
    ]


def _publish_interpreted(transducer, instances):
    """The literal step-relation interpreter, no compilation or caching."""
    return [
        TransducerRuntime(transducer, max_nodes=MAX_NODES).run(instance).tree
        for instance in instances
    ]


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measured_seconds(benchmark, fn):
    """Mean benchmark time, falling back to one timed run under --benchmark-disable."""
    if benchmark.stats is not None:
        return benchmark.stats.stats.mean
    return _time(fn)[1]


def test_registrar_batch_compiled_vs_cold(benchmark):
    """One shared-cache plan streamed over 50 registrar instances vs 50 cold publishes."""
    transducer = tau1_prerequisite_hierarchy()
    instances = [
        generate_registrar_instance(40, max_prereqs=2, depth=4, seed=seed)
        for seed in range(BATCH_SIZE)
    ]
    expected, cold_seconds = _time(lambda: _publish_cold(transducer, instances))
    _, interpreted_seconds = _time(lambda: _publish_interpreted(transducer, instances))

    # Size the plan's cache to the serving working set: in steady state the
    # batch is answered from memoised expansions across runs, which is the
    # designed behaviour of the batch-first API.
    plan = Engine(max_nodes=MAX_NODES, cache_instances=BATCH_SIZE).compile(
        transducer, REGISTRAR_SCHEMA
    )

    def batched():
        return list(publish_stream(plan, instances))

    trees = benchmark(batched)
    assert trees == expected

    batched_seconds = _measured_seconds(benchmark, batched)
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["interpreted_seconds"] = interpreted_seconds
    benchmark.extra_info["batched_seconds"] = batched_seconds
    benchmark.extra_info["cold_over_batched_ratio"] = cold_seconds / batched_seconds
    benchmark.extra_info["interpreted_over_batched_ratio"] = (
        interpreted_seconds / batched_seconds
    )
    benchmark.extra_info["cache"] = str(plan.cache_stats)
    # The acceptance criterion: batching one compiled plan must beat 50 cold
    # publishes (which re-compile and start an empty memo every call).  Only
    # asserted when real benchmark rounds ran: under --benchmark-disable (the
    # CI smoke mode) both sides are single timed runs, too noisy for a hard
    # wall-clock comparison on shared runners.
    if benchmark.stats is not None:
        assert batched_seconds < cold_seconds


@pytest.mark.parametrize("n", [6, 9])
def test_blowup_family_compiled_vs_interpreted(benchmark, n):
    """Proposition 1(3) blow-ups: memoised expansions vs the interpreter.

    The chain of diamonds repeats the same ``(state, tag, register)``
    configuration exponentially often, so the memo cache collapses the query
    work to one evaluation per distinct configuration.
    """
    transducer = chain_of_diamonds_transducer()
    instance = chain_of_diamonds_instance(n)
    _, interpreted_seconds = _time(
        lambda: TransducerRuntime(transducer, max_nodes=MAX_NODES).run(instance).tree
    )
    reference = TransducerRuntime(transducer, max_nodes=MAX_NODES).run(instance).tree

    plan = Engine(max_nodes=MAX_NODES).compile(transducer)

    def compiled():
        return plan.publish(instance)

    tree = benchmark(compiled)
    assert tree == reference
    assert tree.size() >= 2**n

    compiled_seconds = _measured_seconds(benchmark, compiled)
    benchmark.extra_info["interpreted_seconds"] = interpreted_seconds
    benchmark.extra_info["compiled_seconds"] = compiled_seconds
    benchmark.extra_info["interpreted_over_compiled_ratio"] = (
        interpreted_seconds / compiled_seconds
    )


def test_streaming_mode_has_bounded_memory_proxy(benchmark):
    """Streaming never materialises the tree: measure event throughput."""
    transducer = chain_of_diamonds_transducer()
    instance = chain_of_diamonds_instance(9)
    plan = Engine(max_nodes=MAX_NODES).compile(transducer)

    def stream():
        return sum(1 for _ in plan.publish_events(instance))

    events = benchmark(stream)
    assert events >= 2 ** 9
