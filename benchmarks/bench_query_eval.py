"""Naive vs planned query evaluation: the ISSUE-2 acceptance benchmark.

Two comparisons, each also a correctness check (the planned answers must
equal the naive evaluator's):

* ``registrar multi-join``: a four-atom rule query (two joins through
  ``prereq`` plus a department selection) on a generated registrar database,
  evaluated tuple-at-a-time (``ConjunctiveQuery.evaluate_naive``) vs through
  the compiled :class:`~repro.query.plan.QueryPlan` (indexed scans + hash
  joins).  The acceptance criterion is a >= 5x speedup.
* ``datalog transitive closure``: the naive full-rule iteration vs the
  semi-naive delta-plan evaluator on a layered-DAG blow-up workload.

As with ``bench_engine_compile.py``, the measured ratios are attached to the
pytest-benchmark JSON via ``extra_info`` (run with ``--benchmark-json=...`` to
export them).  The module is also runnable directly -- ``python
benchmarks/bench_query_eval.py [--quick]`` -- printing the same numbers as
JSON, which is what the CI smoke step does.
"""

from __future__ import annotations

import json
import sys
import time

from repro.datalog import evaluate_program, evaluate_program_naive
from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.query import plan_query
from repro.workloads.random_instances import layered_dag_instance
from repro.workloads.registrar import generate_registrar_instance

#: The acceptance threshold for the registrar multi-join speedup.
MIN_SPEEDUP = 5.0


def registrar_multi_join_query() -> ConjunctiveQuery:
    """CS courses with their prerequisites-of-prerequisites (4 atoms, 3 joins)."""
    c1, t1, d1 = Variable("c1"), Variable("t1"), Variable("d1")
    c2, c3, t3, d3 = Variable("c2"), Variable("c3"), Variable("t3"), Variable("d3")
    return ConjunctiveQuery(
        (c1, t1, c3, t3),
        (
            RelationAtom("course", (c1, t1, d1)),
            RelationAtom("prereq", (c1, c2)),
            RelationAtom("prereq", (c2, c3)),
            RelationAtom("course", (c3, t3, d3)),
        ),
        (equality(d1, Constant("CS")),),
    )


def transitive_closure_program() -> DatalogProgram:
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return DatalogProgram(
        [
            DatalogRule(RelationAtom("tc", (x, y)), (RelationAtom("E", (x, y)),)),
            DatalogRule(
                RelationAtom("tc", (x, y)),
                (RelationAtom("tc", (x, z)), RelationAtom("E", (z, y))),
            ),
            DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("tc", (x, y)),)),
        ]
    )


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measured_seconds(benchmark, fn):
    """Mean benchmark time, falling back to one timed run under --benchmark-disable."""
    if benchmark.stats is not None:
        return benchmark.stats.stats.mean
    return _time(fn)[1]


def measure_registrar_multi_join(num_courses: int = 150) -> dict:
    """Raw numbers for the registrar comparison (shared by test and script)."""
    query = registrar_multi_join_query()
    instance = generate_registrar_instance(num_courses, max_prereqs=3, seed=5)
    expected, naive_seconds = _time(lambda: query.evaluate_naive(instance))
    plan = plan_query(query)
    assert plan is not None
    plan.execute(instance)  # warm the plan and the relation hash indexes
    answers, planned_seconds = _time(lambda: plan.execute(instance))
    assert answers == expected
    return {
        "num_courses": num_courses,
        "answers": len(answers),
        "naive_seconds": naive_seconds,
        "planned_seconds": planned_seconds,
        "naive_over_planned_ratio": naive_seconds / planned_seconds,
        "join_order": list(plan.join_order()),
    }


def measure_datalog_transitive_closure(layers: int = 8, width: int = 6) -> dict:
    """Raw numbers for the Datalog comparison (shared by test and script)."""
    program = transitive_closure_program()
    instance = layered_dag_instance(layers, width, seed=2)
    expected, naive_seconds = _time(lambda: evaluate_program_naive(program, instance))
    answers, semi_naive_seconds = _time(lambda: evaluate_program(program, instance))
    assert answers == expected
    return {
        "layers": layers,
        "width": width,
        "facts": len(answers),
        "naive_seconds": naive_seconds,
        "semi_naive_seconds": semi_naive_seconds,
        "naive_over_semi_naive_ratio": naive_seconds / semi_naive_seconds,
    }


def test_registrar_multi_join_planned_vs_naive(benchmark):
    """The acceptance criterion: planned evaluation >= 5x over tuple-at-a-time."""
    query = registrar_multi_join_query()
    instance = generate_registrar_instance(150, max_prereqs=3, seed=5)
    expected, naive_seconds = _time(lambda: query.evaluate_naive(instance))
    plan = plan_query(query)
    plan.execute(instance)  # warm the plan and the relation hash indexes

    def planned():
        return plan.execute(instance)

    answers = benchmark(planned)
    assert answers == expected

    planned_seconds = _measured_seconds(benchmark, planned)
    ratio = naive_seconds / planned_seconds
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["planned_seconds"] = planned_seconds
    benchmark.extra_info["naive_over_planned_ratio"] = ratio
    benchmark.extra_info["join_order"] = " >< ".join(plan.join_order())
    assert ratio >= MIN_SPEEDUP


def test_datalog_semi_naive_vs_naive(benchmark):
    """Semi-naive delta plans vs naive iteration on a layered-DAG closure."""
    program = transitive_closure_program()
    instance = layered_dag_instance(7, 5, seed=2)
    expected, naive_seconds = _time(lambda: evaluate_program_naive(program, instance))

    def semi_naive():
        return evaluate_program(program, instance)

    answers = benchmark(semi_naive)
    assert answers == expected

    semi_naive_seconds = _measured_seconds(benchmark, semi_naive)
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["semi_naive_seconds"] = semi_naive_seconds
    benchmark.extra_info["naive_over_semi_naive_ratio"] = naive_seconds / semi_naive_seconds


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    report = {
        "benchmark": "bench_query_eval",
        "mode": "quick" if quick else "full",
        "registrar_multi_join": measure_registrar_multi_join(80 if quick else 150),
        "datalog_transitive_closure": measure_datalog_transitive_closure(
            *(6, 4) if quick else (8, 6)
        ),
    }
    print(json.dumps(report, indent=2))
    ratio = report["registrar_multi_join"]["naive_over_planned_ratio"]
    if ratio < MIN_SPEEDUP:
        print(
            f"FAIL: planned evaluation only {ratio:.1f}x over naive "
            f"(required: {MIN_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
