"""The serving layer: facade overhead and subscription delivery.

Two acceptance claims of the ``repro.serve`` API redesign, both measured on
the registrar workload:

* **dispatch overhead** -- routing a publish through
  :meth:`~repro.serve.server.ViewServer.publish` (view resolution, binding
  validation, source/version resolution, backend and maintenance routing)
  must cost at most 10% over calling the engine directly.  Both sides run
  the identical inner work -- a full event-streamed serialisation of the
  view (``output="bytes"`` with ``maintenance="full"`` vs
  :func:`repro.serve.publish_document` on the compiled plan) -- so the
  measured gap is purely the facade.

* **subscription delivery** -- consuming a stream of single-tuple commits
  through :meth:`~repro.serve.server.ViewServer.subscribe` (one
  incrementally maintained republish per commit, edit script pushed) must
  be at least 5x faster than what a non-incremental consumer does: a
  from-scratch publish of every new version (cold plan, as in
  ``bench_incremental``) followed by a tree diff.

As with the other benchmarks, ratios are attached to the pytest-benchmark
JSON via ``extra_info``; the module is also runnable directly -- ``python
benchmarks/bench_serve.py [--quick]`` -- printing the numbers as JSON, which
is what the CI smoke step and ``run_all.py`` use.
"""

from __future__ import annotations

import json
import sys
import time

from repro.engine import compile_plan
from repro.relational.delta import Delta
from repro.serve import ViewServer, publish_document
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
)
from repro.xmltree.diff import diff_trees, trees_equal

#: The acceptance thresholds of the serving-layer redesign.
MAX_DISPATCH_OVERHEAD = 0.10
MIN_SUBSCRIPTION_SPEEDUP = 5.0


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measured_seconds(benchmark, fn):
    """Mean benchmark time, falling back to one timed run under --benchmark-disable."""
    if benchmark.stats is not None:
        return benchmark.stats.stats.mean
    return _time(fn)[1]


def _single_tuple_deltas(instance, count: int) -> list[Delta]:
    """``count`` effective single-edge ``prereq`` insertions."""
    names = sorted(row[0] for row in instance["course"])
    present = instance["prereq"].tuples
    deltas = []
    step = 1
    while len(deltas) < count:
        for index in range(1, len(names)):
            edge = (names[index], names[(index + step) % len(names)])
            if edge not in present and edge[0] != edge[1]:
                present = present | {edge}
                deltas.append(Delta.insert("prereq", edge))
                if len(deltas) == count:
                    break
        step += 1
    return deltas


def measure_dispatch_overhead(
    num_courses: int = 300, iterations: int = 20, repeats: int = 3
) -> dict:
    """Raw numbers for the facade-overhead comparison (test and script)."""
    tau = tau1_prerequisite_hierarchy()
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)

    server = ViewServer(max_nodes=10**7)
    server.register_view("hierarchy", tau)
    handle = server.attach(instance)
    plan = server.view("hierarchy").plan_for(None)

    def through_server():
        for _ in range(iterations):
            server.publish("hierarchy", output="bytes", maintenance="full")

    def direct():
        for _ in range(iterations):
            publish_document(plan, instance)

    served = server.publish("hierarchy", output="bytes", maintenance="full")
    assert served == publish_document(plan, handle.instance)  # byte identity
    through_server()  # warm both paths once before timing
    direct()
    # Best-of-N interleaved pairs: the inner work is identical, so the
    # minimum of each side is the least-noisy estimate of the true cost.
    server_seconds = min(_time(through_server)[1] for _ in range(repeats))
    direct_seconds = min(_time(direct)[1] for _ in range(repeats))
    overhead = server_seconds / direct_seconds - 1.0
    return {
        "num_courses": num_courses,
        "iterations": iterations,
        "server_seconds": server_seconds,
        "direct_seconds": direct_seconds,
        "dispatch_overhead": overhead,
    }


def measure_subscription_delivery(
    num_courses: int = 300, commits: int = 12
) -> dict:
    """Raw numbers for the subscription comparison (test and script)."""
    tau = tau1_prerequisite_hierarchy()
    base = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)
    deltas = _single_tuple_deltas(base, commits)

    # The serving side: one subscription, one commit per delta, edit scripts
    # consumed as they are delivered.
    server = ViewServer(max_nodes=10**7)
    server.register_view("hierarchy", tau)
    handle = server.attach(base)
    subscription = server.subscribe("hierarchy")
    replayed = subscription.tree

    def serve_stream():
        events = []
        for delta in deltas:
            handle.commit(delta)
            events.append(subscription.pop())
        return events

    events, serve_seconds = _time(serve_stream)

    # The non-incremental consumer: a from-scratch publish of every version
    # (cold plan, as a stateless re-publisher would) plus a tree diff.
    def republish_and_diff():
        instance = base
        tree = compile_plan(tau, max_nodes=10**7).publish(instance)
        scripts = []
        for delta in deltas:
            instance = instance.apply_delta(delta)
            new_tree = compile_plan(tau, max_nodes=10**7).publish(instance)
            scripts.append(diff_trees(tree, new_tree))
            tree = new_tree
        return tree, scripts

    (oracle_tree, naive_scripts), naive_seconds = _time(republish_and_diff)

    # Both consumers converge on the same document; the subscription's edit
    # scripts replay the initial tree into it.
    for event in events:
        replayed = event.edits.apply(replayed)
    assert trees_equal(replayed, oracle_tree)
    assert trees_equal(subscription.tree, oracle_tree)
    assert len(events) == len(naive_scripts) == commits

    return {
        "num_courses": num_courses,
        "commits": commits,
        "output_nodes": oracle_tree.size(),
        "subscription_seconds": serve_seconds,
        "republish_and_diff_seconds": naive_seconds,
        "naive_over_subscription_ratio": naive_seconds / serve_seconds,
    }


def test_dispatch_overhead_within_bound(benchmark):
    """The acceptance criterion: <= 10% facade overhead vs direct calls."""
    tau = tau1_prerequisite_hierarchy()
    instance = generate_registrar_instance(200, max_prereqs=2, depth=6, seed=11)
    server = ViewServer(max_nodes=10**7)
    server.register_view("hierarchy", tau)
    server.attach(instance)
    plan = server.view("hierarchy").plan_for(None)

    def through_server():
        return server.publish("hierarchy", output="bytes", maintenance="full")

    served = benchmark(through_server)
    assert served == publish_document(plan, instance)

    if benchmark.stats is not None:
        server_seconds = benchmark.stats.stats.min
    else:
        server_seconds = _time(through_server)[1]
    direct_seconds = min(
        _time(lambda: publish_document(plan, instance))[1] for _ in range(5)
    )
    overhead = server_seconds / direct_seconds - 1.0
    benchmark.extra_info["server_seconds"] = server_seconds
    benchmark.extra_info["direct_seconds"] = direct_seconds
    benchmark.extra_info["dispatch_overhead"] = overhead
    assert overhead <= MAX_DISPATCH_OVERHEAD

    report = measure_dispatch_overhead(200, iterations=10)
    benchmark.extra_info["interleaved_overhead"] = report["dispatch_overhead"]
    assert report["dispatch_overhead"] <= MAX_DISPATCH_OVERHEAD


def test_subscription_delivery_vs_republish_and_diff(benchmark):
    """The acceptance criterion: subscriptions >= 5x over re-publish-and-diff."""

    def run():
        return measure_subscription_delivery(200, commits=8)

    report = benchmark.pedantic(run, rounds=1, iterations=1) if hasattr(
        benchmark, "pedantic"
    ) else run()
    if report is None:  # pragma: no cover - benchmark-disable quirk
        report = run()
    benchmark.extra_info.update(report)
    assert report["naive_over_subscription_ratio"] >= MIN_SUBSCRIPTION_SPEEDUP


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    dispatch = measure_dispatch_overhead(
        150 if quick else 300, iterations=10 if quick else 20
    )
    subscription = measure_subscription_delivery(
        150 if quick else 300, commits=8 if quick else 12
    )
    report = {
        "benchmark": "bench_serve",
        "mode": "quick" if quick else "full",
        "dispatch_overhead": dispatch,
        "subscription_delivery": subscription,
    }
    print(json.dumps(report, indent=2))
    failed = False
    if dispatch["dispatch_overhead"] > MAX_DISPATCH_OVERHEAD:
        print(
            f"FAIL: serving facade adds {dispatch['dispatch_overhead']:.1%} "
            f"over direct engine calls (allowed: {MAX_DISPATCH_OVERHEAD:.0%})",
            file=sys.stderr,
        )
        failed = True
    ratio = subscription["naive_over_subscription_ratio"]
    if ratio < MIN_SUBSCRIPTION_SPEEDUP:
        print(
            f"FAIL: subscription delivery only {ratio:.1f}x over "
            f"re-publish-and-diff (required: {MIN_SUBSCRIPTION_SPEEDUP}x)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
