"""Theorems 4 and 5: tree-generating power.

* Theorem 4(1): evaluating an FO-transduction directly versus through the
  translated ``PT(FO, tuple, virtual)`` transducer (same node sets / labels);
* Theorem 5: DTD and extended-DTD conformance checking of published trees,
  plus the monotonicity counterexample DTD ``a -> b1 + b2``.
"""

from __future__ import annotations

import pytest

from repro.core import publish
from repro.expressiveness import dtd_choice_language
from repro.logic.fo import Eq, Exists, Or, Rel
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.transductions import FirstOrderTransduction, transduction_to_transducer
from repro.workloads.registrar import generate_registrar_instance, tau1_prerequisite_hierarchy
from repro.xmltree.dtd import DTD, concat, star, sym

x1, y1, z1 = Variable("x1"), Variable("y1"), Variable("z1")


def _reachable_transduction() -> FirstOrderTransduction:
    occurs = Or((Exists((z1,), Rel("E", (x1, z1))), Exists((z1,), Rel("E", (z1, x1)))))
    return FirstOrderTransduction(
        width=1,
        domain_formula=occurs,
        root_formula=Eq(x1, Constant("v0_0")),
        edge_formula=Rel("E", (x1, y1)),
        label_formulas={"n": occurs},
    )


def _layered_graph(layers: int, width: int) -> Instance:
    from repro.workloads.random_instances import layered_dag_instance

    return layered_dag_instance(layers, width, seed=1)


@pytest.mark.parametrize("layers,width", [(3, 2), (4, 2), (4, 3)])
def test_transduction_direct_evaluation(benchmark, layers, width):
    transduction = _reachable_transduction()
    instance = _layered_graph(layers, width)
    tree = benchmark(lambda: transduction.apply(instance))
    assert tree.label == "r"


@pytest.mark.parametrize("layers,width", [(3, 2), (4, 2)])
def test_transduction_via_transducer(benchmark, layers, width):
    transduction = _reachable_transduction()
    transducer = transduction_to_transducer(transduction)
    instance = _layered_graph(layers, width)
    direct = transduction.apply(instance)
    via = benchmark(lambda: publish(transducer, instance, max_nodes=500_000))
    assert via.size() == direct.size()
    assert via.labels() == direct.labels()


@pytest.mark.parametrize("num_courses", [50, 150])
def test_dtd_conformance_of_published_trees(benchmark, num_courses):
    dtd = DTD(
        "db",
        {
            "db": star("course"),
            "course": concat("cno", "title", "prereq"),
            "prereq": star("course"),
            "cno": sym("text"),
            "title": sym("text"),
        },
    )
    instance = generate_registrar_instance(num_courses, cycle_fraction=0.0, seed=5)
    tree = publish(tau1_prerequisite_hierarchy(), instance, max_nodes=500_000)
    assert benchmark(lambda: dtd.conforms(tree))


def test_choice_dtd_monotonicity_witness():
    """Theorem 5: the DTD a -> b1 + b2 defeats monotone (CQ) transducers."""
    from repro.xmltree.tree import tree as t

    dtd = dtd_choice_language()
    assert dtd.conforms(t("a", "b1"))
    assert dtd.conforms(t("a", "b2"))
    assert not dtd.conforms(t("a", "b1", "b2"))
