"""Sharded serving cluster vs. a single-process ``NetServer`` under load.

The workload is a **multi-namespace commit/publish storm**: eight tenant
namespaces (chosen so the crc32 routing table splits them evenly across
both 2 and 4 shards -- the measured speedup is the cluster's, not the
hash's), each with a durable ``tau1`` view over the registrar instance.
One client thread per namespace runs ``commit; publish`` rounds against
the same HTTP surface:

* **single** -- one ``NetServerThread`` with a WAL directory holds every
  namespace in one process (the durability cost matches the cluster's);
* **sharded** -- a :class:`ShardCluster` with 2 and then 4 worker
  processes behind the router front door.

Every run's final per-namespace document is compared byte-for-byte
against the single-process run before any timing is trusted.  The
acceptance bar: **>= 1.6x with 2 shards and monotone scaling to 4** --
asserted whenever the host actually has that many cores, and recorded
(with the skip reason) otherwise, so a 1-core CI box checks correctness
while a multi-core box enforces the perf claim.

Runnable directly -- ``python benchmarks/bench_shard.py [--quick]`` --
printing the numbers as JSON with ``shard_counts`` / ``cpu_count``
metadata; ``run_all.py`` and the CI smoke step consume that.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.relational.delta import Delta
from repro.serve.net import NetClient, NetServerThread, ShardCluster, shard_for
from repro.workloads.registrar import generate_registrar_instance

#: The acceptance thresholds of the sharding tentpole.
MIN_SPEEDUP_2_SHARDS = 1.6
SHARD_COUNTS = (2, 4)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _balanced_namespaces(per_class: int = 2) -> list[str]:
    """Tenant names landing ``per_class`` on each of 4 shards.

    ``crc32 % 4`` classes fold evenly onto ``% 2``, so the same set is
    balanced for both cluster sizes; with a skewed set the measured
    ceiling would be the routing hash, not the cluster.
    """
    by_class: dict[int, list[str]] = {0: [], 1: [], 2: [], 3: []}
    for index in range(256):
        name = f"tenant{index:03d}"
        by_class[shard_for(name, 4)].append(name)
    return [ns for cls in range(4) for ns in by_class[cls][:per_class]]


def _run_storm(
    address: tuple[str, int],
    namespaces: list[str],
    instance,
    deltas: list[Delta],
) -> tuple[dict[str, str], float]:
    """Register/attach/warm every namespace, then time the threaded storm."""
    clients = []
    for ns in namespaces:
        client = NetClient(*address, namespace=ns)
        client.register_view("tau1")
        client.attach(instance, name="db", durable=True)
        client.publish("tau1", source="db")  # warm-up: compile the plan
        clients.append(client)

    documents: dict[str, str] = {}
    errors: list[BaseException] = []

    def worker(client: NetClient) -> None:
        try:
            for delta in deltas:
                client.commit("db", delta)
                served = client.publish("tau1", source="db")
            documents[client.namespace] = served.document
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(client,), name=f"storm-{client.namespace}")
        for client in clients
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for client in clients:
        client.close()
    if errors:
        raise errors[0]
    return documents, elapsed


def measure_shard_storm(size: int, rounds: int) -> dict:
    """The same storm against one process, then 2- and 4-shard clusters."""
    namespaces = _balanced_namespaces()
    instance = generate_registrar_instance(size, seed=2)
    deltas = [
        Delta.insert("course", (f"extra{index:03d}", f"Extra {index}", "PAD"))
        for index in range(rounds)
    ]

    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        with NetServerThread("127.0.0.1", 0, wal_dir=Path(tmp) / "wal") as srv:
            single_documents, single_seconds = _run_storm(
                srv.address, namespaces, instance, deltas
            )

    report = {
        "namespaces": len(namespaces),
        "rounds": rounds,
        "instance_size": size,
        "single_seconds": single_seconds,
        "byte_identical": True,
    }
    for shards in SHARD_COUNTS:
        with ShardCluster(shards=shards) as cluster:
            documents, seconds = _run_storm(
                cluster.address, namespaces, instance, deltas
            )
        assert documents == single_documents, (
            f"sharded output diverged from single-process at {shards} shards"
        )
        report[f"shards{shards}_seconds"] = seconds
        report[f"speedup_{shards}"] = single_seconds / seconds
    return report


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    cpu_count = _cpu_count()
    storm = measure_shard_storm(
        size=16 if quick else 30, rounds=2 if quick else 4
    )
    report = {
        "benchmark": "bench_shard",
        "mode": "quick" if quick else "full",
        "cpu_count": cpu_count,
        "shard_counts": list(SHARD_COUNTS),
        "storm": storm,
        "speedup_checks": {
            f"shards{count}": (
                "asserted"
                if cpu_count >= count
                else f"skipped: host has {cpu_count} core(s); needs >= {count}"
            )
            for count in SHARD_COUNTS
        },
    }
    print(json.dumps(report, indent=2))

    failed = False
    if cpu_count >= 2 and storm["speedup_2"] < MIN_SPEEDUP_2_SHARDS:
        print(
            f"FAIL: storm only {storm['speedup_2']:.2f}x with 2 shards "
            f"(required: {MIN_SPEEDUP_2_SHARDS}x)",
            file=sys.stderr,
        )
        failed = True
    if cpu_count >= 4 and storm["speedup_4"] < storm["speedup_2"]:
        print(
            f"FAIL: scaling is not monotone: {storm['speedup_4']:.2f}x at 4 "
            f"shards < {storm['speedup_2']:.2f}x at 2",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
