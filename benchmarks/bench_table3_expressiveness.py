"""Table III: relational expressive power of the fragments.

The benchmark exercises the constructive translations behind Theorem 3(2) and
Proposition 6(1) and checks empirical agreement on random inputs:

* ``PT(CQ, tuple, O)`` vs LinDatalog -- both directions of the translation,
  with the transitive-closure query as the canonical recursive workload;
* ``PTnr(CQ, tuple, O)`` vs UCQ;
* ``PT(IFP, tuple, O)`` vs IFP (the same-generation / transitive-closure
  queries evaluated directly and through a transducer).
"""

from __future__ import annotations

import pytest

from repro.core.relational_query import output_relation
from repro.datalog import (
    DatalogProgram,
    DatalogRule,
    evaluate_program,
    lindatalog_to_transducer,
    transducer_to_lindatalog,
)
from repro.expressiveness import nonrecursive_transducer_to_ucq, relational_language_of
from repro.core.classes import TransducerClass
from repro.languages.registry import example_dad_rdb_mapping
from repro.logic.cq import RelationAtom
from repro.logic.terms import Variable
from repro.workloads.random_instances import random_graph_instance
from repro.workloads.registrar import example_registrar_instance, tau1_prerequisite_hierarchy

x, y, z = Variable("x"), Variable("y"), Variable("z")


def transitive_closure_program() -> DatalogProgram:
    return DatalogProgram(
        [
            DatalogRule(RelationAtom("S", (x, y)), (RelationAtom("E", (x, y)),)),
            DatalogRule(
                RelationAtom("S", (x, y)),
                (RelationAtom("S", (x, z)), RelationAtom("E", (z, y))),
            ),
            DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("S", (x, y)),)),
        ]
    )


@pytest.mark.parametrize("nodes,edges", [(6, 10), (10, 20), (14, 30)])
def test_lindatalog_to_transducer_agreement(benchmark, nodes, edges):
    program = transitive_closure_program()
    transducer = lindatalog_to_transducer(program)
    instance = random_graph_instance(nodes, edges, seed=nodes)
    expected = evaluate_program(program, instance)

    result = benchmark(lambda: output_relation(transducer, instance, "ao", max_nodes=500_000))
    assert result == expected


def test_transducer_to_lindatalog_agreement(benchmark):
    transducer = tau1_prerequisite_hierarchy()
    instance = example_registrar_instance()
    program = transducer_to_lindatalog(transducer, "course")
    expected = output_relation(transducer, instance, "course")
    result = benchmark(lambda: evaluate_program(program, instance))
    assert result == expected


def test_nonrecursive_cq_equals_ucq(benchmark):
    transducer = example_dad_rdb_mapping()
    instance = example_registrar_instance()
    ucq = nonrecursive_transducer_to_ucq(transducer, "course")
    expected = output_relation(transducer, instance, "course")
    result = benchmark(lambda: ucq.evaluate(instance))
    assert result == expected


def test_table3_characterisations():
    """Regenerate the Table III rows used above (no timing)."""
    assert "LinDatalog" in relational_language_of(TransducerClass.parse("PT(CQ, tuple, normal)")).characterisation
    assert "UCQ" in relational_language_of(TransducerClass.parse("PTnr(CQ, tuple, normal)")).characterisation
    assert "IFP" in relational_language_of(TransducerClass.parse("PTnr(IFP, tuple, normal)")).characterisation
    assert "PSPACE" in relational_language_of(TransducerClass.parse("PT(FO, relation, virtual)")).characterisation
