"""Table II: the decision problems and their complexity regimes.

The benchmark exercises each *decidable* cell of Table II on generated inputs
and records how running time scales, reproducing the qualitative separation
the table claims:

* emptiness of ``PT(CQ, S, normal)`` -- polynomial (a syntactic check on the
  start rule), flat as the transducer grows;
* emptiness of ``PT(CQ, S, virtual)`` -- exponential in the worst case (3SAT
  gadgets), growing with the number of clauses;
* membership of ``PTnr(CQ, tuple, normal)`` -- the constructive small-model
  procedure on produced trees;
* equivalence of ``PTnr(CQ, tuple, normal)`` -- the Claim 4 characterisation.

Undecidable cells are asserted to raise :class:`UndecidableProblemError`.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    UndecidableProblemError,
    are_equivalent,
    is_empty,
    is_member,
)
from repro.analysis.membership import MembershipStatus
from repro.analysis.reductions import cnf, three_sat_emptiness_gadget
from repro.core import RuleQuery, publish
from repro.core.rules import RuleItem, TransductionRule
from repro.core.transducer import make_transducer
from repro.logic import parse_cq
from repro.workloads.registrar import tau2_prerequisite_closure, tau3_courses_without_db_prereq


def wide_normal_transducer(num_items: int):
    """A normal CQ transducer whose start rule has ``num_items`` queries."""
    items = []
    for index in range(num_items):
        query = parse_cq(f"ans(x) :- R(x, y), x != 'c{index}'")
        items.append(RuleItem("q", f"a{index}", RuleQuery(query, 1)))
    rules = [TransductionRule("q0", "r", tuple(items))]
    rules += [TransductionRule("q", f"a{index}", ()) for index in range(num_items)]
    return make_transducer(rules, start_state="q0", root_tag="r")


def random_3sat(num_variables: int, num_clauses: int, seed: int = 0):
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(num_variables), k=min(3, num_variables))
        clauses.append([(v, rng.random() < 0.5) for v in variables])
    return cnf(num_variables, clauses)


@pytest.mark.parametrize("size", [5, 20, 60])
def test_emptiness_normal_is_cheap(benchmark, size):
    transducer = wide_normal_transducer(size)
    result = benchmark(lambda: is_empty(transducer))
    assert not result.empty


@pytest.mark.parametrize("clauses", [2, 4, 6])
def test_emptiness_virtual_3sat_gadget(benchmark, clauses):
    formula = random_3sat(4, clauses, seed=clauses)
    gadget = three_sat_emptiness_gadget(formula)
    result = benchmark(lambda: is_empty(gadget))
    assert result.empty is (not formula.is_satisfiable_bruteforce())


def test_membership_constructive(benchmark):
    transducer = make_transducer(
        [
            TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(parse_cq("ans(x) :- R(x, y)"), 1)),)),
            TransductionRule("q", "a", (RuleItem("q", "b", RuleQuery(parse_cq("ans(z) :- Reg_a(z)"), 1)),)),
            TransductionRule("q", "b", ()),
        ],
        start_state="q0",
        root_tag="r",
    )
    from repro.xmltree.tree import tree

    target = tree("r", tree("a", "b"), tree("a", "b"))
    result = benchmark(lambda: is_member(transducer, target))
    assert result.status is MembershipStatus.MEMBER


def test_equivalence_nonrecursive_cq(benchmark, registrar_small):
    from repro.languages.registry import example_dad_rdb_mapping

    left = example_dad_rdb_mapping()
    right = example_dad_rdb_mapping()
    verdict = benchmark(lambda: are_equivalent(left, right))
    assert verdict.equivalent


def test_undecidable_cells_raise():
    """The FO/IFP rows and the recursive equivalence cells refuse to decide."""
    tau3 = tau3_courses_without_db_prereq()
    tau2 = tau2_prerequisite_closure()
    with pytest.raises(UndecidableProblemError):
        is_empty(tau3)
    with pytest.raises(UndecidableProblemError):
        is_empty(tau2)
    with pytest.raises(UndecidableProblemError):
        are_equivalent(tau3, tau3)
