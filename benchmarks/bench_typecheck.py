"""The typecheck subsystem: static check cost and runtime-validator overhead.

Two acceptance claims of the ``repro.typecheck`` subsystem, both measured on
the registrar workload:

* **static check cost** -- running the static output typechecker at
  :meth:`~repro.serve.server.ViewServer.register_view` time is a one-off
  compile-time cost, not a per-publish one.  The benchmark times both the
  PROVED path (abstraction + inclusion check) and the REFUTED path
  (which additionally publishes candidate witness instances to build the
  concrete counterexample) and reports absolute seconds; both must finish
  well under a second on the registrar views.

* **runtime-validator overhead** -- a view that stays UNDECIDED (or is
  registered with ``typecheck="runtime"``) folds a streaming validator over
  its publish events once per version, then memoises the verdict.  On a
  registrar storm of same-version publishes -- the serving steady state --
  the validated server must cost at most 10% over an identical server with
  no DTD attached, and the published bytes must be identical.  A PROVED
  view must never touch the validator at all (``validated == 0``).

As with the other benchmarks, ratios are attached to the pytest-benchmark
JSON via ``extra_info``; the module is also runnable directly -- ``python
benchmarks/bench_typecheck.py [--quick]`` -- printing the numbers as JSON,
which is what the CI smoke step and ``run_all.py`` use.
"""

from __future__ import annotations

import json
import sys
import time

from repro.serve import ViewServer, ViewRejected
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
)
from repro.xmltree.dtd import DTD, Epsilon, alt, concat, opt, star, sym

#: The acceptance threshold: steady-state validation overhead on a storm.
MAX_VALIDATION_OVERHEAD = 0.10
#: Sanity ceiling on the one-off static check (seconds).
MAX_STATIC_CHECK_SECONDS = 1.0

_TEXT = sym("text")


def tau1_output_dtd() -> DTD:
    """The exact output type of the tau1 prerequisite hierarchy."""
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": alt(Epsilon(), concat(sym("cno"), sym("title"), sym("prereq"))),
            "prereq": star(sym("course")),
            "cno": opt(_TEXT),
            "title": opt(_TEXT),
        },
    )


def tau1_strict_dtd() -> DTD:
    """A target tau1 cannot meet: every course must carry cno and title."""
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": opt(_TEXT),
            "title": opt(_TEXT),
        },
    )


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_static_check_cost(repeats: int = 5) -> dict:
    """One-off cost of the static checker on both its outcomes."""
    from repro.typecheck import typecheck_transducer

    tau = tau1_prerequisite_hierarchy()
    proved, proved_seconds = _time(lambda: typecheck_transducer(tau, tau1_output_dtd()))
    refuted, refuted_seconds = _time(lambda: typecheck_transducer(tau, tau1_strict_dtd()))
    assert proved.proved and refuted.refuted
    proved_seconds = min(
        [proved_seconds]
        + [_time(lambda: typecheck_transducer(tau, tau1_output_dtd()))[1] for _ in range(repeats - 1)]
    )
    refuted_seconds = min(
        [refuted_seconds]
        + [_time(lambda: typecheck_transducer(tau, tau1_strict_dtd()))[1] for _ in range(repeats - 1)]
    )
    return {
        "proved_seconds": proved_seconds,
        "refuted_seconds": refuted_seconds,
        "witness_location": refuted.violation.location(),
    }


def _storm_servers(num_courses: int):
    """Two identical servers over one instance: validated and plain."""
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)
    tau = tau1_prerequisite_hierarchy()

    checked = ViewServer(max_nodes=10**7)
    # typecheck="runtime" skips the static proof, forcing the streaming
    # validator onto the publish path -- the worst case the bound covers.
    checked.register_view("hierarchy", tau, output_dtd=tau1_output_dtd(), typecheck="runtime")
    checked.attach(instance, name="db")

    plain = ViewServer(max_nodes=10**7)
    plain.register_view("hierarchy", tau)
    plain.attach(instance, name="db")
    return checked, plain


def measure_validation_overhead(
    num_courses: int = 1200, iterations: int = 20, repeats: int = 5
) -> dict:
    """Raw numbers for the storm comparison (test and script)."""
    checked, plain = _storm_servers(num_courses)

    def storm(server):
        def run():
            for _ in range(iterations):
                server.publish("hierarchy", output="bytes")

        return run

    # Warm both sides once: the checked server validates the version here
    # and memoises it, so the timed storm measures the steady state.
    first_checked = checked.publish("hierarchy", output="bytes")
    first_plain = plain.publish("hierarchy", output="bytes")
    assert first_checked == first_plain  # byte identity, validated vs not
    storm(checked)()
    storm(plain)()

    checked_seconds = min(_time(storm(checked))[1] for _ in range(repeats))
    plain_seconds = min(_time(storm(plain))[1] for _ in range(repeats))
    registered = checked.view("hierarchy")
    assert registered.validated == 1  # one validation pass per version, ever
    assert registered.violations == 0
    return {
        "num_courses": num_courses,
        "iterations": iterations,
        "checked_seconds": checked_seconds,
        "plain_seconds": plain_seconds,
        "validation_overhead": checked_seconds / plain_seconds - 1.0,
        "validated_documents": registered.validated,
    }


def measure_proved_is_free(num_courses: int = 120) -> dict:
    """A statically PROVED view never touches the runtime validator."""
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=7)
    server = ViewServer(max_nodes=10**7)
    server.register_view("hierarchy", tau1_prerequisite_hierarchy(), output_dtd=tau1_output_dtd())
    server.attach(instance, name="db")
    for _ in range(5):
        server.publish("hierarchy", output="bytes")
    registered = server.view("hierarchy")
    assert registered.typecheck_result().proved
    assert registered.validated == 0
    return {
        "verdict": registered.typecheck_result().verdict.value,
        "validated_documents": registered.validated,
    }


def test_static_check_is_a_registration_time_cost(benchmark):
    """Both static verdicts complete quickly, and rejection raises at register."""
    report = benchmark(measure_static_check_cost) if benchmark.stats is not None else measure_static_check_cost()
    benchmark.extra_info.update(report)
    assert report["proved_seconds"] <= MAX_STATIC_CHECK_SECONDS
    assert report["refuted_seconds"] <= MAX_STATIC_CHECK_SECONDS

    server = ViewServer()
    try:
        server.register_view("bad", tau1_prerequisite_hierarchy(), output_dtd=tau1_strict_dtd())
    except ViewRejected as rejected:
        assert rejected.result.refuted
    else:  # pragma: no cover - the registration must fail
        raise AssertionError("refuted view was accepted")


def test_runtime_validation_overhead_within_bound(benchmark):
    """The acceptance criterion: <= 10% storm overhead for validated serving."""

    def run():
        return measure_validation_overhead(600, iterations=8)

    report = benchmark.pedantic(run, rounds=1, iterations=1) if hasattr(
        benchmark, "pedantic"
    ) else run()
    if report is None:  # pragma: no cover - benchmark-disable quirk
        report = run()
    benchmark.extra_info.update(report)
    assert report["validation_overhead"] <= MAX_VALIDATION_OVERHEAD


def test_proved_views_publish_without_validation(benchmark):
    report = benchmark(measure_proved_is_free, 80) if benchmark.stats is not None else measure_proved_is_free(80)
    benchmark.extra_info.update(report)
    assert report["validated_documents"] == 0


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    static = measure_static_check_cost()
    overhead = measure_validation_overhead(
        600 if quick else 1200, iterations=10 if quick else 20
    )
    proved = measure_proved_is_free(80 if quick else 120)
    report = {
        "benchmark": "bench_typecheck",
        "mode": "quick" if quick else "full",
        "static_check": static,
        "validation_overhead": overhead,
        "proved_is_free": proved,
    }
    print(json.dumps(report, indent=2))
    failed = False
    if overhead["validation_overhead"] > MAX_VALIDATION_OVERHEAD:
        print(
            f"FAIL: runtime validation adds {overhead['validation_overhead']:.1%} "
            f"to the publish storm (allowed: {MAX_VALIDATION_OVERHEAD:.0%})",
            file=sys.stderr,
        )
        failed = True
    for side in ("proved_seconds", "refuted_seconds"):
        if static[side] > MAX_STATIC_CHECK_SECONDS:
            print(
                f"FAIL: static check ({side}) took {static[side]:.2f}s "
                f"(allowed: {MAX_STATIC_CHECK_SECONDS:.0f}s)",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
