"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper; besides
timing (pytest-benchmark) the modules assert the *shape* of the paper's claim
(who wins, growth rates, decidability verdicts) so that a benchmark run is
also a reproduction check.
"""

from __future__ import annotations

import pytest

from repro.workloads.registrar import example_registrar_instance, generate_registrar_instance


def pytest_configure(config):
    config.addinivalue_line("markers", "repro: reproduction checks attached to benchmarks")


@pytest.fixture(scope="session")
def registrar_small():
    return example_registrar_instance()


@pytest.fixture(scope="session")
def registrar_medium():
    return generate_registrar_instance(120, max_prereqs=2, seed=1)


@pytest.fixture(scope="session")
def registrar_large():
    return generate_registrar_instance(400, max_prereqs=2, seed=2)
