"""Columnar kernel vs the row-at-a-time planner: the ISSUE-4 acceptance benchmark.

Three comparisons, each also a correctness check:

* ``registrar multi-join``: the four-atom registrar rule query through the
  same :class:`~repro.query.plan.QueryPlan`, executed by the PR 2/3 row
  backend vs the dictionary-encoded columnar kernel -- timed both through
  the decoding :meth:`~repro.query.plan.QueryPlan.execute` boundary and in
  pure integer space (:meth:`~repro.query.plan.QueryPlan.execute_encoded`,
  the representation the publishing engine keeps end-to-end).  Both
  backends must produce identical relations.
* ``datalog transitive closure``: the semi-naive fixpoint on a layered DAG,
  row-backend loop vs the integer-space loop over an encoded instance.
* ``publish byte-identity``: registrar tau1 and the Proposition 1(3)
  chain-of-diamonds view published with the encoding on and off must
  serialise to byte-identical XML (the engine's encoded register pipeline
  is an implementation detail, never a visible one).

The acceptance criterion asserts a >= 5x speedup of the integer-space
columnar pipeline on both query workloads.  As with the other benchmarks,
ratios are attached to the pytest-benchmark JSON via ``extra_info``; the
module is also runnable directly (``python benchmarks/bench_columnar.py
[--quick]``), printing the same numbers as JSON for the CI smoke step.
"""

from __future__ import annotations

import json
import sys
import time

from repro.datalog import evaluate_program
from repro.datalog.program import DatalogProgram, DatalogRule
from repro.engine.plan import compile_plan
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.query import plan_query
from repro.relational.columnar import ensure_encoded
from repro.serve import publish_document
from repro.relational.instance import Instance
from repro.workloads.blowup import (
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.random_instances import layered_dag_instance
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
)

#: The acceptance threshold for the columnar speedups.
MIN_SPEEDUP = 5.0


def registrar_multi_join_query() -> ConjunctiveQuery:
    """CS courses with their prerequisites-of-prerequisites (4 atoms, 3 joins).

    The same query as ``bench_query_eval`` (kept local: the benchmark
    modules are standalone scripts, not a package).
    """
    c1, t1, d1 = Variable("c1"), Variable("t1"), Variable("d1")
    c2, c3, t3, d3 = Variable("c2"), Variable("c3"), Variable("t3"), Variable("d3")
    return ConjunctiveQuery(
        (c1, t1, c3, t3),
        (
            RelationAtom("course", (c1, t1, d1)),
            RelationAtom("prereq", (c1, c2)),
            RelationAtom("prereq", (c2, c3)),
            RelationAtom("course", (c3, t3, d3)),
        ),
        (equality(d1, Constant("CS")),),
    )


def transitive_closure_program() -> DatalogProgram:
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return DatalogProgram(
        [
            DatalogRule(RelationAtom("tc", (x, y)), (RelationAtom("E", (x, y)),)),
            DatalogRule(
                RelationAtom("tc", (x, y)),
                (RelationAtom("tc", (x, z)), RelationAtom("E", (z, y))),
            ),
            DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("tc", (x, y)),)),
        ]
    )


def _best(fn, repeats: int, batches: int = 5) -> float:
    """Best-of-``batches`` mean seconds per call (robust to CI noise)."""
    times = []
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        times.append((time.perf_counter() - start) / repeats)
    return min(times)


def _encoded_twin(instance: Instance) -> Instance:
    """A value-identical instance carrying a dictionary encoding."""
    twin = Instance(instance.schema, {name: instance[name].tuples for name in instance})
    ensure_encoded(twin)
    return twin


def measure_registrar_multi_join(num_courses: int = 400, repeats: int = 40) -> dict:
    """Raw numbers for the registrar comparison (shared by test and script)."""
    query = registrar_multi_join_query()
    instance = generate_registrar_instance(num_courses, max_prereqs=3, seed=5)
    encoded = _encoded_twin(instance)
    plan = plan_query(query)
    assert plan is not None
    row_answers = plan.execute(instance)
    columnar_answers = plan.execute(encoded)
    assert columnar_answers == row_answers, "backends must produce identical relations"
    plan.execute_encoded(encoded)  # warm the kernel and the integer indexes
    row_seconds = _best(lambda: plan.execute(instance), repeats)
    columnar_seconds = _best(lambda: plan.execute(encoded), repeats)
    encoded_seconds = _best(lambda: plan.execute_encoded(encoded), repeats)
    return {
        "num_courses": num_courses,
        "answers": len(row_answers),
        "row_seconds": row_seconds,
        "columnar_seconds": columnar_seconds,
        "encoded_seconds": encoded_seconds,
        "row_over_columnar_ratio": row_seconds / columnar_seconds,
        "row_over_encoded_ratio": row_seconds / encoded_seconds,
        "join_order": list(plan.join_order()),
    }


def measure_datalog_transitive_closure(
    layers: int = 10, width: int = 8, repeats: int = 5
) -> dict:
    """Raw numbers for the Datalog comparison (shared by test and script)."""
    program = transitive_closure_program()
    instance = layered_dag_instance(layers, width, seed=2)
    encoded = _encoded_twin(instance)
    row_facts = evaluate_program(program, instance)
    encoded_facts = evaluate_program(program, encoded)
    assert encoded_facts == row_facts, "backends must produce identical relations"
    row_seconds = _best(lambda: evaluate_program(program, instance), repeats)
    encoded_seconds = _best(lambda: evaluate_program(program, encoded), repeats)
    return {
        "layers": layers,
        "width": width,
        "facts": len(row_facts),
        "row_seconds": row_seconds,
        "encoded_seconds": encoded_seconds,
        "row_over_encoded_ratio": row_seconds / encoded_seconds,
    }


def measure_publish_byte_identity(num_courses: int = 60, diamonds: int = 8) -> dict:
    """Publish timings plus the byte-identity check, encoding on vs off."""
    report = {}
    workloads = [
        (
            "registrar_tau1",
            tau1_prerequisite_hierarchy(),
            generate_registrar_instance(num_courses, max_prereqs=2, seed=7),
            None,
        ),
        (
            "chain_of_diamonds",
            chain_of_diamonds_transducer(),
            chain_of_diamonds_instance(diamonds),
            100_000,
        ),
    ]
    for name, transducer, instance, max_nodes in workloads:
        encoded = _encoded_twin(instance)
        row_plan = compile_plan(transducer, max_nodes=max_nodes or 200_000)
        columnar_plan = compile_plan(transducer, max_nodes=max_nodes or 200_000)
        row_xml = publish_document(row_plan, instance)
        columnar_xml = publish_document(columnar_plan, encoded)
        assert row_xml == columnar_xml, f"{name}: published XML must be byte-identical"
        row_seconds = _best(
            lambda: publish_document(
                compile_plan(transducer, max_nodes=max_nodes or 200_000), instance
            ),
            3,
            batches=3,
        )
        columnar_seconds = _best(
            lambda: publish_document(
                compile_plan(transducer, max_nodes=max_nodes or 200_000), encoded
            ),
            3,
            batches=3,
        )
        # The bytes-native driver (repro.engine.emit) on the encoded twin:
        # identical bytes, measured cold (fresh plan per run, like the rest).
        bytes_xml = compile_plan(
            transducer, max_nodes=max_nodes or 200_000
        ).publish_bytes(encoded)
        assert bytes_xml == row_xml, f"{name}: bytes path must be byte-identical"
        bytes_seconds = _best(
            lambda: compile_plan(
                transducer, max_nodes=max_nodes or 200_000
            ).publish_bytes(encoded),
            3,
            batches=3,
        )
        report[name] = {
            "xml_bytes": len(row_xml),
            "byte_identical": True,
            "row_seconds": row_seconds,
            "columnar_seconds": columnar_seconds,
            "row_over_columnar_ratio": row_seconds / columnar_seconds,
            "bytes_path_seconds": bytes_seconds,
            "row_over_bytes_path_ratio": row_seconds / bytes_seconds,
        }
    return report


def test_registrar_multi_join_columnar_vs_row(benchmark):
    """Acceptance: the integer-space columnar pipeline >= 5x over the row backend."""
    query = registrar_multi_join_query()
    instance = generate_registrar_instance(400, max_prereqs=3, seed=5)
    encoded = _encoded_twin(instance)
    plan = plan_query(query)
    expected = plan.execute(instance)
    assert plan.execute(encoded) == expected
    plan.execute_encoded(encoded)

    def columnar():
        return plan.execute_encoded(encoded)

    benchmark(columnar)
    row_seconds = _best(lambda: plan.execute(instance), 20, batches=3)
    columnar_seconds = _best(lambda: plan.execute(encoded), 20, batches=3)
    encoded_seconds = _best(columnar, 20, batches=3)
    benchmark.extra_info["row_seconds"] = row_seconds
    benchmark.extra_info["columnar_seconds"] = columnar_seconds
    benchmark.extra_info["encoded_seconds"] = encoded_seconds
    benchmark.extra_info["row_over_encoded_ratio"] = row_seconds / encoded_seconds
    assert row_seconds / encoded_seconds >= MIN_SPEEDUP


def test_datalog_transitive_closure_columnar_vs_row(benchmark):
    """Acceptance: the integer-space Datalog fixpoint >= 5x over the row loop."""
    program = transitive_closure_program()
    instance = layered_dag_instance(10, 8, seed=2)
    encoded = _encoded_twin(instance)
    expected = evaluate_program(program, instance)
    assert evaluate_program(program, encoded) == expected

    def columnar():
        return evaluate_program(program, encoded)

    benchmark(columnar)
    row_seconds = _best(lambda: evaluate_program(program, instance), 3, batches=3)
    encoded_seconds = _best(columnar, 3, batches=3)
    benchmark.extra_info["row_seconds"] = row_seconds
    benchmark.extra_info["encoded_seconds"] = encoded_seconds
    benchmark.extra_info["row_over_encoded_ratio"] = row_seconds / encoded_seconds
    assert row_seconds / encoded_seconds >= MIN_SPEEDUP


def test_publish_is_byte_identical_with_encoding():
    """The encoded register pipeline must never change a single output byte."""
    report = measure_publish_byte_identity(num_courses=30, diamonds=6)
    assert all(entry["byte_identical"] for entry in report.values())


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    registrar = measure_registrar_multi_join(
        150 if quick else 400, repeats=20 if quick else 40
    )
    datalog = measure_datalog_transitive_closure(
        *(8, 6) if quick else (10, 8), repeats=5
    )
    publish = measure_publish_byte_identity(
        num_courses=30 if quick else 60, diamonds=6 if quick else 8
    )
    report = {
        "benchmark": "bench_columnar",
        "mode": "quick" if quick else "full",
        "registrar_multi_join": registrar,
        "datalog_transitive_closure": datalog,
        "publish_byte_identity": publish,
    }
    print(json.dumps(report, indent=2))
    failures = []
    if registrar["row_over_encoded_ratio"] < MIN_SPEEDUP:
        failures.append(
            f"registrar multi-join: columnar only "
            f"{registrar['row_over_encoded_ratio']:.1f}x over row "
            f"(required: {MIN_SPEEDUP}x)"
        )
    if datalog["row_over_encoded_ratio"] < MIN_SPEEDUP:
        failures.append(
            f"datalog transitive closure: columnar only "
            f"{datalog['row_over_encoded_ratio']:.1f}x over row "
            f"(required: {MIN_SPEEDUP}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
