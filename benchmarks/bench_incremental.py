"""Incremental vs full republish: the ISSUE-3 acceptance benchmark.

After a single-tuple update to a registrar database, the delta-driven
:meth:`~repro.engine.plan.PublishingPlan.republish` must be at least 5x
faster than a from-scratch publish of the updated instance (the full
republish, evaluated on a cold plan -- what a non-incremental system does on
every source change) while producing a byte-identical document.

Two updates are measured, each also a correctness check against the
full-publish oracle:

* ``registrar prereq insert``: one new ``prereq`` edge under the recursive
  ``tau1`` hierarchy view -- only the ``(q, prereq)`` rule reads the changed
  relation, so almost every memoised expansion and most built subtrees are
  retained;
* ``blowup edge delete``: removing one first-diamond edge of a
  chain-of-diamonds instance under the Proposition 1(3) unfolding
  transducer, where the output is exponentially larger than the source (an
  informational metric -- both sides already benefit from the engine's
  structural sharing, so the margin is smaller than on the registrar).

As with the other benchmarks, ratios are attached to the pytest-benchmark
JSON via ``extra_info``; the module is also runnable directly -- ``python
benchmarks/bench_incremental.py [--quick]`` -- printing the numbers as JSON,
which is what the CI smoke step does.
"""

from __future__ import annotations

import json
import sys
import time

from repro.engine import compile_plan
from repro.relational.delta import Delta
from repro.workloads.blowup import (
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import generate_registrar_instance, tau1_prerequisite_hierarchy
from repro.xmltree.serialize import to_xml

#: The acceptance threshold for the single-tuple registrar update.
MIN_SPEEDUP = 5.0


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measured_seconds(benchmark, fn):
    """Mean benchmark time, falling back to one timed run under --benchmark-disable."""
    if benchmark.stats is not None:
        return benchmark.stats.stats.mean
    return _time(fn)[1]


def measure_registrar_single_insert(num_courses: int = 300) -> dict:
    """Raw numbers for the registrar comparison (shared by test and script)."""
    tau = tau1_prerequisite_hierarchy()
    base = generate_registrar_instance(num_courses, max_prereqs=2, depth=6, seed=11)
    delta = Delta.insert("prereq", ("cs0007", "cs0003"))
    assert delta.normalized(base).change_count() == 1

    warm = compile_plan(tau, max_nodes=10**7)
    prev_tree = warm.publish(base)
    result, incremental_seconds = _time(
        lambda: warm.republish(base, delta, prev_tree=prev_tree)
    )
    cold = compile_plan(tau, max_nodes=10**7)
    full_tree, full_seconds = _time(lambda: cold.publish(result.instance))

    assert result.tree == full_tree
    assert to_xml(result.tree) == to_xml(full_tree)
    assert result.edits.apply(prev_tree) == result.tree
    stats = warm.cache_stats
    return {
        "num_courses": num_courses,
        "output_nodes": full_tree.size(),
        "edits": len(result.edits),
        "expansions_invalidated": result.invalidated,
        "expansions_retained": result.retained,
        "cache_hit_rate": stats.hit_rate,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "full_over_incremental_ratio": full_seconds / incremental_seconds,
    }


def measure_blowup_edge_delete(diamonds: int = 12) -> dict:
    """Raw numbers for the blow-up comparison (shared by test and script)."""
    tau = chain_of_diamonds_transducer()
    base = chain_of_diamonds_instance(diamonds)
    # Cutting one edge of the *first* diamond halves the unfolding below the
    # root; everything under the surviving sibling is structurally shared.
    delta = Delta.delete("R", ("a0", "b0_1"))

    warm = compile_plan(tau, max_nodes=10**7)
    prev_tree = warm.publish(base)
    result, incremental_seconds = _time(
        lambda: warm.republish(base, delta, prev_tree=prev_tree)
    )
    cold = compile_plan(tau, max_nodes=10**7)
    full_tree, full_seconds = _time(lambda: cold.publish(result.instance))

    assert result.tree == full_tree
    assert result.edits.apply(prev_tree) == result.tree
    return {
        "diamonds": diamonds,
        "output_nodes": full_tree.size(),
        "edits": len(result.edits),
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "full_over_incremental_ratio": full_seconds / incremental_seconds,
    }


def test_incremental_republish_vs_full(benchmark):
    """The acceptance criterion: incremental republish >= 5x over full."""
    tau = tau1_prerequisite_hierarchy()
    base = generate_registrar_instance(300, max_prereqs=2, depth=6, seed=11)
    delta = Delta.insert("prereq", ("cs0007", "cs0003"))
    warm = compile_plan(tau, max_nodes=10**7)
    prev_tree = warm.publish(base)
    updated = base.apply_delta(delta)
    full_tree, full_seconds = _time(
        lambda: compile_plan(tau, max_nodes=10**7).publish(updated)
    )

    def incremental():
        return warm.republish(base, delta, prev_tree=prev_tree)

    result = benchmark(incremental)
    assert result.tree == full_tree
    assert to_xml(result.tree) == to_xml(full_tree)

    incremental_seconds = _measured_seconds(benchmark, incremental)
    ratio = full_seconds / incremental_seconds
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["incremental_seconds"] = incremental_seconds
    benchmark.extra_info["full_over_incremental_ratio"] = ratio
    benchmark.extra_info["invalidated"] = result.invalidated
    benchmark.extra_info["retained"] = result.retained
    assert ratio >= MIN_SPEEDUP


def test_blowup_edge_delete_vs_full(benchmark):
    """Incremental maintenance of an exponentially blown-up output."""
    tau = chain_of_diamonds_transducer()
    base = chain_of_diamonds_instance(10)
    delta = Delta.delete("R", ("a0", "b0_1"))
    warm = compile_plan(tau, max_nodes=10**7)
    prev_tree = warm.publish(base)
    updated = base.apply_delta(delta)
    full_tree, full_seconds = _time(
        lambda: compile_plan(tau, max_nodes=10**7).publish(updated)
    )

    def incremental():
        return warm.republish(base, delta, prev_tree=prev_tree)

    result = benchmark(incremental)
    assert result.tree == full_tree

    incremental_seconds = _measured_seconds(benchmark, incremental)
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["incremental_seconds"] = incremental_seconds
    benchmark.extra_info["full_over_incremental_ratio"] = full_seconds / incremental_seconds


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    report = {
        "benchmark": "bench_incremental",
        "mode": "quick" if quick else "full",
        "registrar_single_insert": measure_registrar_single_insert(
            150 if quick else 300
        ),
        "blowup_edge_delete": measure_blowup_edge_delete(9 if quick else 12),
    }
    print(json.dumps(report, indent=2))
    ratio = report["registrar_single_insert"]["full_over_incremental_ratio"]
    if ratio < MIN_SPEEDUP:
        print(
            f"FAIL: incremental republish only {ratio:.1f}x over full "
            f"(required: {MIN_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
