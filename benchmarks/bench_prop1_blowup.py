"""Proposition 1(2-4): output-size bounds of the transformation.

* tuple registers: the chain-of-diamonds family ``I_n`` (size ``4n``) yields
  output trees of size at least ``2^n`` -- exponential blow-up;
* relation registers: the binary-counter family ``J_n`` yields output trees of
  size at least ``2^(2^n)`` -- doubly exponential blow-up;
* non-recursive tuple-register transducers stay polynomial in the input
  (Proposition 3), measured on the depth-two view tau3.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import publish_full
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
    expected_minimum_output_size_doubly_exponential,
    expected_minimum_output_size_exponential,
)
from repro.workloads.registrar import generate_registrar_instance, tau3_courses_without_db_prereq


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_exponential_blowup_tuple_registers(benchmark, n):
    transducer = chain_of_diamonds_transducer()
    instance = chain_of_diamonds_instance(n)
    result = benchmark(lambda: publish_full(transducer, instance, max_nodes=2_000_000))
    assert result.output_size >= expected_minimum_output_size_exponential(n)
    assert instance.total_size() == 4 * n


@pytest.mark.parametrize("n", [1, 2])
def test_doubly_exponential_blowup_relation_registers(benchmark, n):
    transducer = binary_counter_transducer()
    instance = binary_counter_instance(n)
    result = benchmark(lambda: publish_full(transducer, instance, max_nodes=2_000_000))
    assert result.output_size >= expected_minimum_output_size_doubly_exponential(n)


@pytest.mark.parametrize("num_courses", [50, 200, 400])
def test_nonrecursive_tuple_registers_stay_polynomial(benchmark, num_courses):
    """Proposition 3: PTnr(IFP, tuple, O) evaluation is PTIME in the data."""
    transducer = tau3_courses_without_db_prereq()
    instance = generate_registrar_instance(num_courses, max_prereqs=1, seed=3)
    result = benchmark(lambda: publish_full(transducer, instance, max_nodes=2_000_000))
    # Output grows linearly with the number of courses (depth is fixed).
    assert result.output_size <= 8 * num_courses + 10
