"""The network tier: WebSocket fan-out at a thousand subscribers.

The acceptance claim of ``repro.serve.net``: one commit costs one
incremental republish plus one wire encoding **total**, and then one socket
write per subscriber -- so the per-subscriber delivery cost must stay flat
as the subscriber count grows.  The benchmark holds >= 1000 concurrent
WebSocket subscriptions against a live :class:`NetServerThread`, drives a
stream of commits over HTTP, verifies every subscriber receives exactly one
edit-script message per commit, and compares the per-subscriber cost at a
small and a large fleet.

Runnable directly -- ``python benchmarks/bench_net.py [--quick]`` -- printing
the numbers as JSON; ``run_all.py`` discovers it like the other
script-capable modules.
"""

from __future__ import annotations

import asyncio
import json
import resource
import sys
import time

from repro.relational.delta import Delta
from repro.serve.net import NetClient, NetServerThread
from repro.serve.net.client import AsyncSubscriber
from repro.workloads.registrar import generate_registrar_instance

#: The large fleet must not cost more than this factor per subscriber over
#: the small fleet.  "Flat" with generous headroom for scheduler noise: a
#: per-subscriber encode (the thing this tier exists to avoid) would show up
#: as a factor tracking the 10x fleet ratio, far above this bound.
MAX_COST_GROWTH = 3.0


def _raise_fd_limit(wanted: int) -> None:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < wanted:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(wanted, hard), hard))


def _commit_deltas(count: int, tag: str) -> list[Delta]:
    return [
        Delta.insert("course", (f"BENCH-{tag}-{step}", f"Title {step}", "CS"))
        for step in range(count)
    ]


async def _run_fleet(
    host: str, port: int, subscribers: int, deltas: list[Delta]
) -> dict:
    """Open the fleet, drive the commits, time delivery, verify counts."""
    path = "/v1/ns/bench/views/tau1/subscribe?source=db"
    fleet = []
    opened_in = time.perf_counter()
    # open in batches so the connect burst does not serialize behind recv
    batch = 64
    for start in range(0, subscribers, batch):
        fleet.extend(
            await asyncio.gather(
                *(
                    AsyncSubscriber.open(host, port, path)
                    for _ in range(min(batch, subscribers - start))
                )
            )
        )
    # every subscriber gets the init document before the commits begin
    inits = await asyncio.gather(*(sub.recv() for sub in fleet))
    assert all(message["type"] == "init" for message in inits)
    base_version = inits[0]["version"]
    opened_in = time.perf_counter() - opened_in

    client = NetClient(host, port, namespace="bench")
    loop = asyncio.get_running_loop()

    commit_seconds = 0.0
    for index, delta in enumerate(deltas, start=1):
        start = time.perf_counter()
        out = await loop.run_in_executor(None, client.commit, "db", delta)
        received = await asyncio.gather(*(sub.recv() for sub in fleet))
        commit_seconds += time.perf_counter() - start
        assert out["delivered"] == subscribers, (out, subscribers)
        for message in received:
            assert message["type"] == "edits"
            assert message["version"] == base_version + index

    for sub in fleet:
        sub.close()
    per_commit = commit_seconds / len(deltas)
    return {
        "subscribers": subscribers,
        "commits": len(deltas),
        "open_seconds": opened_in,
        "per_commit_seconds": per_commit,
        "per_subscriber_microseconds": per_commit / subscribers * 1e6,
    }


def measure_fan_out(small: int, large: int, commits: int) -> dict:
    """Delivery cost at two fleet sizes against one live server."""
    _raise_fd_limit(large * 2 + 256)
    instance = generate_registrar_instance(40, seed=13)
    report: dict = {"fleets": []}
    with NetServerThread("127.0.0.1", 0) as srv:
        host, port = srv.address
        client = NetClient(host, port, namespace="bench")
        client.register_view("tau1")
        client.attach(instance, name="db")
        for count in (small, large):
            deltas = _commit_deltas(commits, tag=str(count))
            fleet = asyncio.run(_run_fleet(host, port, count, deltas))
            report["fleets"].append(fleet)
            # between fleets: keep versions bounded so the second run is not
            # paying for the first run's history
            client.prune("db", keep_last=1)
    small_cost = report["fleets"][0]["per_subscriber_microseconds"]
    large_cost = report["fleets"][1]["per_subscriber_microseconds"]
    report["cost_growth"] = large_cost / small_cost if small_cost else float("inf")
    return report


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    small, large = (50, 250) if quick else (100, 1000)
    report = {
        "benchmark": "bench_net",
        "mode": "quick" if quick else "full",
        **measure_fan_out(small, large, commits=4 if quick else 8),
    }
    print(json.dumps(report, indent=2))
    if report["cost_growth"] > MAX_COST_GROWTH:
        print(
            f"FAIL: per-subscriber delivery cost grew {report['cost_growth']:.2f}x "
            f"from {small} to {large} subscribers "
            f"(allowed: {MAX_COST_GROWTH:.1f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
