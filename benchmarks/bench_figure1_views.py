"""Figure 1 / Examples 3.1-3.2: evaluating the three registrar views.

The paper's Figure 1 shows the three XML views tau1 (recursive prerequisite
hierarchy), tau2 (flattened prerequisite closure via a virtual tag) and tau3
(depth-two filtered course list).  The benchmark publishes each view over
registrar databases of increasing size and records output sizes, reproducing
the qualitative claims: tau1's output depth is data-driven, tau2's output has
depth three, tau3's depth two, and evaluation is polynomial for the
tuple-register views (Propositions 1 and 3).
"""

from __future__ import annotations

import pytest

from repro.core import publish
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)

SIZES = [25, 60, 120]
CLOSURE_SIZES = [25, 60]


@pytest.mark.parametrize("num_courses", SIZES)
def test_tau1_prerequisite_hierarchy(benchmark, num_courses):
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=4, seed=1)
    transducer = tau1_prerequisite_hierarchy()
    tree = benchmark(lambda: publish(transducer, instance, max_nodes=500_000))
    assert tree.label == "db"
    assert tree.depth() >= 4  # data-driven recursion below each course


@pytest.mark.parametrize("num_courses", CLOSURE_SIZES)
def test_tau2_prerequisite_closure(benchmark, num_courses):
    instance = generate_registrar_instance(num_courses, max_prereqs=2, depth=4, seed=1)
    transducer = tau2_prerequisite_closure()
    tree = benchmark(lambda: publish(transducer, instance, max_nodes=500_000))
    # Figure 1(b): depth three below the root (course / prereq / cno) plus text leaves.
    course_nodes = [child for child in tree.children]
    assert all(course.children[2].label == "prereq" for course in course_nodes)
    assert "l" not in tree.labels()


@pytest.mark.parametrize("num_courses", SIZES)
def test_tau3_filtered_course_list(benchmark, num_courses):
    instance = generate_registrar_instance(num_courses, max_prereqs=2, seed=1)
    transducer = tau3_courses_without_db_prereq()
    tree = benchmark(lambda: publish(transducer, instance, max_nodes=500_000))
    assert tree.depth() <= 4  # Figure 1(c): fixed depth


def test_figure1_shape_summary(registrar_small):
    """Non-timed reproduction summary comparing the three views on one instance."""
    t1 = publish(tau1_prerequisite_hierarchy(), registrar_small)
    t2 = publish(tau2_prerequisite_closure(), registrar_small)
    t3 = publish(tau3_courses_without_db_prereq(), registrar_small)
    assert t1.depth() > t2.depth() >= 4
    assert t3.depth() == 4
    # tau2 lists each prerequisite once (a set), tau1 expands the full hierarchy.
    assert t1.size() >= t2.size()
