"""Run every benchmark and merge the results into one ``BENCH_results.json``.

Two kinds of benchmark module live in this directory:

* **script-capable** modules exposing a ``main(argv)`` entry point that
  prints a JSON report (``bench_query_eval``, ``bench_incremental``,
  ``bench_columnar``, ``bench_serve``, ``bench_parallel``, ...) -- these
  are run as subprocesses and their JSON is captured verbatim;
* **pytest-only** modules (the table/figure reproductions) -- these are run
  through pytest with ``--benchmark-disable`` (the timings are secondary;
  the reproduction assertions are the point) and their pass/fail status and
  wall time recorded.

The merged report lands in ``BENCH_results.json`` next to this script (or at
``--output PATH``), seeding the perf trajectory: every entry carries both
the speedup ratios and the absolute times its module reported, so future
sessions can diff against it.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--quick] [--output PATH]

``--quick`` is forwarded to the script-capable modules (smaller workloads)
and is what the CI smoke step uses.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_results.json"


def _discover() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def _is_script_capable(path: Path) -> bool:
    source = path.read_text(encoding="utf-8")
    return "def main(" in source and "__main__" in source


def _run_script(path: Path, quick: bool) -> dict:
    """Run a script-capable benchmark and capture its JSON report."""
    command = [sys.executable, str(path)] + (["--quick"] if quick else [])
    start = time.perf_counter()
    proc = subprocess.run(
        command,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=_env(),
    )
    elapsed = time.perf_counter() - start
    entry: dict = {
        "kind": "script",
        "status": "passed" if proc.returncode == 0 else "failed",
        "returncode": proc.returncode,
        "wall_seconds": elapsed,
    }
    try:
        entry["report"] = json.loads(proc.stdout)
    except json.JSONDecodeError:
        entry["stdout_tail"] = proc.stdout[-2000:]
    if proc.returncode != 0:
        entry["stderr_tail"] = proc.stderr[-2000:]
    return entry


def _run_pytest(path: Path) -> dict:
    """Run a pytest-only benchmark module with timings disabled."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        str(path),
        "--benchmark-disable",
    ]
    start = time.perf_counter()
    proc = subprocess.run(
        command,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=_env(),
    )
    elapsed = time.perf_counter() - start
    entry: dict = {
        "kind": "pytest",
        "status": "passed" if proc.returncode == 0 else "failed",
        "returncode": proc.returncode,
        "wall_seconds": elapsed,
    }
    if proc.returncode != 0:
        entry["stdout_tail"] = proc.stdout[-2000:]
    return entry


def _cpu_count() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _worker_pool_sizes(results: dict) -> list[int]:
    """Worker counts exercised by the parallel benchmark (metadata)."""
    report = results.get("bench_parallel", {}).get("report", {})
    return list(report.get("workers_tested", []))


def _shard_counts(results: dict) -> list[int]:
    """Cluster sizes exercised by the shard benchmark (metadata)."""
    report = results.get("bench_shard", {}).get("report", {})
    return list(report.get("shard_counts", []))


def _env() -> dict:
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workloads")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"merged report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    results: dict[str, dict] = {}
    failed = []
    for path in _discover():
        name = path.stem
        print(f"== {name} ==", flush=True)
        if _is_script_capable(path):
            entry = _run_script(path, args.quick)
        else:
            entry = _run_pytest(path)
        results[name] = entry
        print(f"   {entry['status']} in {entry['wall_seconds']:.1f}s", flush=True)
        if entry["status"] != "passed":
            failed.append(name)

    if failed:
        # Do not overwrite the previous good baseline with a partial run:
        # a failing bench means these numbers are not a trustworthy
        # trajectory point, and a half-written report is worse than none.
        print(
            f"FAIL: {', '.join(failed)} -- {args.output} left untouched",
            file=sys.stderr,
        )
        return 1

    merged = {
        "suite": "repro-benchmarks",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "cpu_count": _cpu_count(),
        "worker_pool_sizes": _worker_pool_sizes(results),
        "shard_counts": _shard_counts(results),
        "results": results,
    }
    args.output.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
