"""Multi-core publishing: the ``repro.parallel`` worker pool under load.

Two workloads, both asserting byte-identity between pooled and serial
output before any timing is trusted:

* **multi-view publish storm** -- a :class:`ViewServer` holding sixteen
  view bindings (``closure`` and ``hierarchy`` over equal-cost synthetic
  departments) serves every binding after each commit, serial vs.
  ``publish_batch`` on 2- and 4-worker pools.  Bindings are chosen so the
  ``(view, binding)`` shard hash splits them evenly across both pool
  sizes, making the measured speedup the scheduler's, not the hash's.
  The acceptance bar: **>= 1.6x with 2 workers and monotone scaling to
  4** -- asserted whenever the host actually has that many cores, and
  recorded (with the skip reason) otherwise, so a 1-core CI box checks
  correctness while a multi-core box enforces the perf claim.

* **blow-up / fan-out expansion** -- :func:`parallel_publish_bytes` on a
  single document whose root children are independently expensive (the
  transitive-closure view), plus the paper's Proposition-1 chain of
  diamonds.  The diamonds number is reported but *expected* to be ~1x or
  below: the rendered-span memo makes the serial blow-up nearly free
  (repeated subtrees render once), so fan-out only pays on memo-cold,
  sibling-heavy roots -- which is exactly what the report shows.

Runnable directly -- ``python benchmarks/bench_parallel.py [--quick]`` --
printing the numbers as JSON with ``workers`` / ``cpu_count`` metadata;
``run_all.py`` and the CI smoke step consume that.
"""

from __future__ import annotations

import json
import os
import sys
import time
from zlib import crc32

from repro.engine.plan import compile_plan
from repro.parallel import WorkerPool, parallel_publish_bytes
from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.serve import ViewServer
from repro.workloads.blowup import (
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import REGISTRAR_SCHEMA, registrar_view_suite

#: The acceptance thresholds of the multi-core tentpole.
MIN_SPEEDUP_2_WORKERS = 1.6
POOL_SIZES = (2, 4)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Multi-view publish storm.
# ---------------------------------------------------------------------------


def _storm_instance(departments, chain: int) -> Instance:
    """Equal-cost departments: one prerequisite chain of ``chain`` courses
    each, so every ``closure`` binding does the same transitive-closure
    work and every ``hierarchy`` binding renders the same nesting."""
    courses, prereqs = [], []
    for dept in departments:
        names = [f"{dept.lower()}{i:03d}" for i in range(chain)]
        for index, cno in enumerate(names):
            courses.append((cno, f"Course {dept} {index}", dept))
            if index:
                prereqs.append((cno, names[index - 1]))
    return Instance.from_dict(
        {"course": courses, "prereq": prereqs}, schema=REGISTRAR_SCHEMA
    )


def _balanced_departments(server: ViewServer, view: str, per_class: int) -> list[str]:
    """Departments whose ``(view, binding)`` shard keys split evenly.

    The pool shards by ``crc32(repr(key)) % size`` (deterministic), so the
    benchmark can pick bindings that land ``per_class`` on each of 4
    workers -- which is automatically an even split over 2 as well.  With
    an unbalanced set the measured ceiling would be the hash skew, not the
    pool.
    """
    registered = server.view(view)
    by_class: dict[int, list[str]] = {0: [], 1: [], 2: [], 3: []}
    for index in range(64):
        dept = f"DEPT{index:02d}"
        key = (view, registered.binding_key({"department": dept}))
        by_class[crc32(repr(key).encode("utf-8", "backslashreplace")) % 4].append(dept)
    return [dept for cls in range(4) for dept in by_class[cls][:per_class]]


def _storm_server(instance: Instance, pool=None):
    server = ViewServer(pool=pool)
    for name, (factory, params) in registrar_view_suite().items():
        server.register_view(name, factory, params=params)
    handle = server.attach(instance.copy() if hasattr(instance, "copy") else instance)
    return server, handle


def _storm_requests(handle, bindings) -> list[dict]:
    return [
        dict(
            view=view,
            params={"department": dept},
            source=handle,
            output="bytes",
            maintenance="full",
        )
        for view, dept in bindings
    ]


def measure_publish_storm(chain: int, rounds: int) -> dict:
    """Serve every binding after every commit: serial vs 2 vs 4 workers."""
    probe = ViewServer()
    for name, (factory, params) in registrar_view_suite().items():
        probe.register_view(name, factory, params=params)
    bindings = [
        ("closure", dept)
        for dept in _balanced_departments(probe, "closure", per_class=2)
    ] + [
        ("hierarchy", dept)
        for dept in _balanced_departments(probe, "hierarchy", per_class=2)
    ]
    departments = sorted({dept for _, dept in bindings})
    instance = _storm_instance(departments, chain)
    deltas = [
        Delta.insert("course", (f"extra{index:03d}", f"Extra {index}", "PAD"))
        for index in range(rounds)
    ]

    def run(pool):
        server, handle = _storm_server(instance, pool)
        requests = _storm_requests(handle, bindings)
        server.publish_batch(requests)  # warm-up: compile plans, start pool
        documents, elapsed = [], 0.0
        for delta in deltas:
            handle.commit(delta)  # a new version: every render is cold
            batch, seconds = _time(lambda: server.publish_batch(requests))
            documents.append(batch)
            elapsed += seconds
        return documents, elapsed

    serial_documents, serial_seconds = run(None)
    report = {
        "bindings": len(bindings),
        "rounds": rounds,
        "chain": chain,
        "serial_seconds": serial_seconds,
        "byte_identical": True,
    }
    for size in POOL_SIZES:
        with WorkerPool(workers=size) as pool:
            pooled_documents, pooled_seconds = run(pool)
            stats = pool.stats()
        assert pooled_documents == serial_documents, (
            f"pooled output diverged from serial at {size} workers"
        )
        report[f"pool{size}_seconds"] = pooled_seconds
        report[f"speedup_{size}"] = serial_seconds / pooled_seconds
        report[f"pool{size}_tasks_per_worker"] = stats["tasks_per_worker"]
    return report


# ---------------------------------------------------------------------------
# Single-publish fan-out expansion.
# ---------------------------------------------------------------------------


def measure_expansion(chain: int, diamonds: int) -> dict:
    """:func:`parallel_publish_bytes` on fan-out-heavy and memo-heavy roots."""
    suite = registrar_view_suite()
    closure_tau = suite["closure"][0](department="DEPT00")
    closure_instance = _storm_instance(["DEPT00"], chain)
    diamond_tau = chain_of_diamonds_transducer()
    diamond_instance = chain_of_diamonds_instance(diamonds)

    report: dict = {"closure_chain": chain, "diamonds_n": diamonds}
    for name, tau, instance, budget in (
        ("closure_fanout", closure_tau, closure_instance, None),
        ("diamonds_memoized", diamond_tau, diamond_instance, 4 * 10**6),
    ):
        kwargs = {} if budget is None else {"max_nodes": budget}
        serial_plan = compile_plan(tau, **kwargs)
        serial_doc, serial_seconds = _time(
            lambda: serial_plan.publish_bytes(instance)
        )
        with WorkerPool(workers=2) as pool:
            pooled_plan = compile_plan(tau, **kwargs)
            pooled_doc, pooled_seconds = _time(
                lambda: parallel_publish_bytes(pooled_plan, instance, pool)
            )
        assert pooled_doc == serial_doc, f"{name}: pooled bytes diverged"
        report[name] = {
            "serial_seconds": serial_seconds,
            "pool2_seconds": pooled_seconds,
            "speedup_2": serial_seconds / pooled_seconds,
            "document_bytes": len(serial_doc),
        }
    return report


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    cpu_count = _cpu_count()
    storm = measure_publish_storm(
        chain=12 if quick else 20, rounds=1 if quick else 2
    )
    expansion = measure_expansion(
        chain=24 if quick else 40, diamonds=8 if quick else 10
    )
    checks = []
    for size in POOL_SIZES:
        if cpu_count >= size:
            checks.append((size, None))
        else:
            checks.append(
                (size, f"host has {cpu_count} core(s); needs >= {size}")
            )
    report = {
        "benchmark": "bench_parallel",
        "mode": "quick" if quick else "full",
        "cpu_count": cpu_count,
        "workers_tested": list(POOL_SIZES),
        "publish_storm": storm,
        "expansion": expansion,
        "speedup_checks": {
            f"pool{size}": ("asserted" if reason is None else f"skipped: {reason}")
            for size, reason in checks
        },
    }
    print(json.dumps(report, indent=2))

    failed = False
    if cpu_count >= 2 and storm["speedup_2"] < MIN_SPEEDUP_2_WORKERS:
        print(
            f"FAIL: publish storm only {storm['speedup_2']:.2f}x with 2 "
            f"workers (required: {MIN_SPEEDUP_2_WORKERS}x)",
            file=sys.stderr,
        )
        failed = True
    if cpu_count >= 4 and storm["speedup_4"] < storm["speedup_2"]:
        print(
            f"FAIL: scaling is not monotone: {storm['speedup_4']:.2f}x at 4 "
            f"workers < {storm['speedup_2']:.2f}x at 2",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
