"""Delta-driven incremental maintenance, tested against the full-publish oracle.

Every layer of the pipeline is differential-tested: deltas against explicit
set algebra, ``execute_delta`` against plain recomputation, ``republish``
against a from-scratch publish (tree- and byte-wise) -- including random
update sequences with deletions that empty a relation, and blow-up
workloads.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import RepublishResult, compile_plan
from repro.incremental import Delta, EditScript, IncrementalPublisher, diff_trees
from repro.logic.cq import (
    ConjunctiveQuery,
    RelationAtom,
    UnionOfConjunctiveQueries,
    equality,
)
from repro.logic.fo import And, Eq, Exists, FormulaQuery, Not, Rel
from repro.logic.terms import Constant, Variable
from repro.query import plan_query
from repro.relational.errors import ArityError, UnknownRelationError
from repro.relational.instance import Instance
from repro.workloads.blowup import (
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    example_registrar_instance,
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.diff import DeleteSubtree, InsertSubtree, ReplaceSubtree
from repro.xmltree.serialize import to_xml
from repro.xmltree.tree import text_node, tree


# ---------------------------------------------------------------------------
# Relational layer: Delta, apply_delta, Relation.diff / added / removed.
# ---------------------------------------------------------------------------


class TestDelta:
    def test_value_semantics_and_empty_entries_dropped(self):
        a = Delta(inserted={"R": [("a", "b")], "S": []}, deleted={"R": ()})
        b = Delta(inserted={"R": {("a", "b")}})
        assert a == b
        assert hash(a) == hash(b)
        assert a.touched_relations() == frozenset({"R"})
        assert a.change_count() == 1
        assert not Delta()
        assert Delta().is_empty()

    def test_apply_delta_semantics(self, registrar_instance):
        delta = Delta(
            inserted={"prereq": [("cs450", "cs340")]},
            deleted={"prereq": [("cs240", "cs101")]},
        )
        updated = registrar_instance.apply_delta(delta)
        assert ("cs450", "cs340") in updated["prereq"]
        assert ("cs240", "cs101") not in updated["prereq"]
        # A tuple both deleted and inserted ends up present.
        both = Delta(
            inserted={"prereq": [("cs240", "cs101")]},
            deleted={"prereq": [("cs240", "cs101")]},
        )
        assert ("cs240", "cs101") in registrar_instance.apply_delta(both)["prereq"]

    def test_apply_delta_reuses_untouched_relations_by_identity(self, registrar_instance):
        delta = Delta.insert("prereq", ("cs450", "cs340"))
        updated = registrar_instance.apply_delta(delta)
        assert updated["course"] is registrar_instance["course"]
        assert updated["prereq"] is not registrar_instance["prereq"]
        assert updated.schema is registrar_instance.schema

    def test_apply_noop_delta_returns_self(self, registrar_instance):
        noop = Delta(
            inserted={"prereq": [("cs240", "cs101")]},  # already present
            deleted={"prereq": [("nope", "nope")]},  # absent
        )
        assert registrar_instance.apply_delta(noop) is registrar_instance
        assert registrar_instance.apply_delta(Delta()) is registrar_instance

    def test_apply_delta_unknown_relation(self, registrar_instance):
        with pytest.raises(UnknownRelationError):
            registrar_instance.apply_delta(Delta.insert("enrolled", ("s1", "cs101")))

    def test_normalized_keeps_only_effective_changes(self, registrar_instance):
        delta = Delta(
            inserted={"prereq": [("cs240", "cs101"), ("cs450", "cs340")]},
            deleted={"prereq": [("cs340", "cs240"), ("zz", "zz")]},
        )
        effective = delta.normalized(registrar_instance)
        assert effective.inserted_into("prereq") == frozenset({("cs450", "cs340")})
        assert effective.deleted_from("prereq") == frozenset({("cs340", "cs240")})
        # Round trip: inverting the normalized delta restores the instance.
        updated = registrar_instance.apply_delta(effective)
        assert updated.apply_delta(effective.inverted()) == registrar_instance

    def test_normalized_rejects_wrong_arity_tuples(self, registrar_instance):
        with pytest.raises(ArityError):
            Delta.delete("prereq", ("cs240",)).normalized(registrar_instance)
        with pytest.raises(ArityError):
            Delta.insert("prereq", ("a", "b", "c")).normalized(registrar_instance)

    def test_instance_diff_round_trips(self, registrar_instance):
        updated = registrar_instance.apply_delta(
            Delta(
                inserted={"course": [("cs999", "Capstone", "CS")]},
                deleted={"prereq": [("cs240", "cs101")]},
            )
        )
        delta = registrar_instance.diff(updated)
        assert registrar_instance.apply_delta(delta) == updated
        assert Delta.from_instances(updated, registrar_instance) == delta.inverted()
        assert registrar_instance.diff(registrar_instance).is_empty()

    def test_relation_fast_paths(self, registrar_instance):
        prereq = registrar_instance["prereq"]
        assert prereq.added([("cs240", "cs101")]) is prereq
        assert prereq.added([]) is prereq
        assert prereq.removed([("zz", "zz")]) is prereq
        assert prereq.removed([]) is prereq
        grown = prereq.added([("cs450", "cs340")])
        assert len(grown) == len(prereq) + 1
        assert grown.diff(grown) == (frozenset(), frozenset())
        added, removed = prereq.diff(grown)
        assert added == frozenset({("cs450", "cs340")}) and not removed
        with pytest.raises(ArityError):
            prereq.diff(registrar_instance["course"])
        with pytest.raises(ArityError):
            prereq.added([("only-one",)])
        with pytest.raises(ArityError):
            prereq.removed([("only-one",)])  # a typo'd delete must not no-op


# ---------------------------------------------------------------------------
# Query layer: execute_delta against plain recomputation.
# ---------------------------------------------------------------------------


def _prereq_join_query() -> ConjunctiveQuery:
    c1, c2, t, d = Variable("c1"), Variable("c2"), Variable("t"), Variable("d")
    return ConjunctiveQuery(
        (c1, c2),
        (RelationAtom("prereq", (c1, c2)), RelationAtom("course", (c2, t, d))),
        (equality(d, Constant("CS")),),
    )


def _random_registrar_delta(rng: random.Random, instance: Instance) -> Delta:
    inserted: dict[str, list] = {}
    deleted: dict[str, list] = {}
    courses = sorted(row[0] for row in instance["course"])
    for _ in range(rng.randint(1, 3)):
        kind = rng.randrange(5)
        if kind == 0:
            name = f"cs9{rng.randrange(100):02d}"
            inserted.setdefault("course", []).append(
                (name, f"Course {name}", rng.choice(["CS", "Math"]))
            )
        elif kind == 1 and len(courses) >= 2:
            inserted.setdefault("prereq", []).append(
                (rng.choice(courses), rng.choice(courses))
            )
        elif kind == 2 and instance["prereq"].tuples:
            deleted.setdefault("prereq", []).append(
                rng.choice(sorted(instance["prereq"].tuples))
            )
        elif kind == 3 and instance["course"].tuples:
            deleted.setdefault("course", []).append(
                rng.choice(sorted(instance["course"].tuples))
            )
        else:
            deleted.setdefault("prereq", []).extend(instance["prereq"].tuples)
    return Delta(inserted, deleted)


class TestQueryDelta:
    def test_untouched_relations_are_free(self, registrar_instance):
        plan = plan_query(_prereq_join_query())
        change = plan.execute_delta(
            registrar_instance, Delta.insert("course", ("m1", "Algebra", "Math"))
        )
        # The course relation *is* scanned; use a relation the plan ignores.
        assert change.strategy in {"delta", "delta+rederive"}
        x = Variable("x")
        only_prereq = plan_query(
            ConjunctiveQuery((x,), (RelationAtom("prereq", (x, x)),))
        )
        change = only_prereq.execute_delta(
            registrar_instance, Delta.insert("course", ("m1", "Algebra", "Math"))
        )
        assert change.strategy == "none" and change.is_empty()

    def test_insert_only_delta_avoids_rederivation(self, registrar_instance):
        plan = plan_query(_prereq_join_query())
        delta = Delta.insert("prereq", ("cs450", "cs340"))
        change = plan.execute_delta(registrar_instance, delta)
        assert change.strategy == "delta"
        assert change.added == frozenset({("cs450", "cs340")})
        assert not change.removed

    def test_random_deltas_match_recomputation(self):
        query = _prereq_join_query()
        plan = plan_query(query)
        rng = random.Random(42)
        instance = generate_registrar_instance(30, max_prereqs=2, seed=3)
        for _ in range(25):
            delta = _random_registrar_delta(rng, instance)
            prev = plan.execute(instance)
            updated = instance.apply_delta(delta)
            change = plan.execute_delta(instance, delta, prev_answers=prev)
            expected = plan.execute(updated)
            assert change.apply(prev) == expected
            assert change.added == expected - prev
            assert change.removed == prev - expected
            instance = updated

    def test_self_join_needs_per_occurrence_plans(self, registrar_instance):
        # prereq >< prereq: a new edge must join against *old* edges on both
        # sides, which a wholesale override of the relation would miss.
        c1, c2, c3 = Variable("c1"), Variable("c2"), Variable("c3")
        plan = plan_query(
            ConjunctiveQuery(
                (c1, c3),
                (RelationAtom("prereq", (c1, c2)), RelationAtom("prereq", (c2, c3))),
            )
        )
        delta = Delta.insert("prereq", ("cs450", "cs340"))
        prev = plan.execute(registrar_instance)
        change = plan.execute_delta(registrar_instance, delta, prev_answers=prev)
        expected = plan.execute(registrar_instance.apply_delta(delta))
        assert change.apply(prev) == expected
        assert ("cs450", "cs240") in change.added  # new edge >< old edge

    def test_deletion_with_alternative_derivation_survives(self):
        # ans(x) :- R(x, y): deleting one supporting tuple of an answer with
        # two derivations must not remove the answer (DRed rederivation).
        x, y = Variable("x"), Variable("y")
        instance = Instance.from_dict({"R": [("a", "b"), ("a", "c"), ("d", "e")]})
        plan = plan_query(ConjunctiveQuery((x,), (RelationAtom("R", (x, y)),)))
        change = plan.execute_delta(instance, Delta.delete("R", ("a", "b")))
        assert change.strategy == "delta+rederive"
        assert not change.removed and not change.added
        change = plan.execute_delta(instance, Delta.delete("R", ("d", "e")))
        assert change.removed == frozenset({("d",)})

    def test_negation_falls_back_to_recomputation(self, registrar_instance):
        cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
        c2, t2, d2 = Variable("c2"), Variable("t2"), Variable("d2")
        no_db = Not(
            Exists(
                (c2, t2, d2),
                And(
                    (
                        Rel("prereq", (cno, c2)),
                        Rel("course", (c2, t2, d2)),
                        Eq(t2, Constant("Databases")),
                    )
                ),
            )
        )
        query = FormulaQuery(
            (cno,),
            Exists((title, dept), And((Rel("course", (cno, title, dept)), no_db))),
        )
        plan = plan_query(query)
        assert plan is not None
        assert not plan.is_monotone()
        assert "recompute fallback" in plan.delta_strategy()
        assert "recompute fallback" in plan.explain()
        delta = Delta.insert("prereq", ("cs340", "cs450"))
        prev = plan.execute(registrar_instance)
        change = plan.execute_delta(registrar_instance, delta, prev_answers=prev)
        assert change.strategy == "recompute"
        expected = plan.execute(registrar_instance.apply_delta(delta))
        assert change.apply(prev) == expected
        assert ("cs340",) in change.removed  # cs340 now requires the DB course

    def test_monotone_strategy_is_flagged_in_explain(self):
        plan = plan_query(_prereq_join_query())
        assert plan.is_monotone()
        assert "per-occurrence delta plans" in plan.explain()
        assert "prereq" in plan.scan_relations()

    def test_ucq_delta(self, registrar_instance):
        x, y, t, d = Variable("x"), Variable("y"), Variable("t"), Variable("d")
        ucq = UnionOfConjunctiveQueries(
            (
                ConjunctiveQuery((x,), (RelationAtom("prereq", (x, y)),)),
                ConjunctiveQuery(
                    (x,),
                    (RelationAtom("course", (x, t, d)),),
                    (equality(d, Constant("Math")),),
                ),
            )
        )
        plan = plan_query(ucq)
        delta = Delta(
            inserted={"course": [("m2", "Topology", "Math")]},
            deleted={"prereq": list(registrar_instance["prereq"].tuples)},
        )
        prev = plan.execute(registrar_instance)
        change = plan.execute_delta(registrar_instance, delta, prev_answers=prev)
        expected = plan.execute(registrar_instance.apply_delta(delta))
        assert change.apply(prev) == expected


# ---------------------------------------------------------------------------
# xmltree layer: edit scripts.
# ---------------------------------------------------------------------------


class TestEditScript:
    def test_identical_trees_diff_to_empty(self):
        doc = tree("db", tree("a", "b"), tree("c"))
        assert diff_trees(doc, doc).is_empty()
        assert diff_trees(doc, tree("db", tree("a", "b"), tree("c"))).is_empty()

    def test_root_replacement(self):
        old, new = tree("db", "a"), tree("catalog", "a")
        script = diff_trees(old, new)
        assert [type(e) for e in script] == [ReplaceSubtree]
        assert script.apply(old) == new

    @pytest.mark.parametrize(
        "old,new",
        [
            (tree("r", "a", "b", "c"), tree("r", "a", "x", "c")),  # replace middle
            (tree("r", "a", "c"), tree("r", "a", "b", "c")),  # insert middle
            (tree("r", "a", "b", "c"), tree("r", "a", "c")),  # delete middle
            (tree("r"), tree("r", "a", "b")),  # grow from empty
            (tree("r", "a", "b"), tree("r")),  # shrink to empty
            (
                tree("r", tree("a", text_node("x"))),
                tree("r", tree("a", text_node("y"))),  # text change
            ),
            (
                tree("r", tree("a", "b", "c"), "d"),
                tree("r", "d", tree("a", "c", "b")),  # reordering
            ),
        ],
    )
    def test_apply_reproduces_new_tree(self, old, new):
        script = diff_trees(old, new)
        assert script.apply(old) == new
        # And the inverse direction also round-trips.
        assert diff_trees(new, old).apply(new) == old

    def test_nested_edit_paths(self):
        old = tree("db", tree("a", tree("b", "x", "y"), "k"), "t")
        new = tree("db", tree("a", tree("b", "x", "z", "y"), "k"), "t")
        script = diff_trees(old, new)
        assert len(script) == 1
        (edit,) = script
        assert isinstance(edit, InsertSubtree) and edit.path == (1, 1, 2)
        assert script.apply(old) == new

    def test_describe_mentions_paths_and_xml(self):
        old = tree("db", "a")
        new = tree("db", "a", tree("course", text_node("cs1")))
        text = diff_trees(old, new).describe()
        assert "insert /2" in text and "<course>cs1</course>" in text
        deleted = diff_trees(new, old).describe()
        assert deleted == "delete /2"

    def test_apply_errors(self):
        doc = tree("r", "a")
        with pytest.raises(ValueError):
            EditScript((DeleteSubtree(()),)).apply(doc)
        with pytest.raises(ValueError):
            EditScript((DeleteSubtree((5,)),)).apply(doc)
        with pytest.raises(ValueError):
            EditScript((InsertSubtree((1, 3), tree("x")),)).apply(doc)

    def test_diff_survives_recursion_limit_on_deep_spines(self):
        import sys

        from repro.xmltree import trees_equal

        depth = sys.getrecursionlimit() + 500
        old = tree("leaf")
        peer = tree("leaf")
        for _ in range(depth):
            old = tree("a", old)
            peer = tree("a", peer)
        new = tree("a", peer, "extra")
        assert trees_equal(old, peer)
        assert not trees_equal(old, new)
        script = diff_trees(tree("r", old), tree("r", new))
        assert trees_equal(script.apply(tree("r", old)), tree("r", new))


# ---------------------------------------------------------------------------
# Engine layer: republish against the full-publish oracle.
# ---------------------------------------------------------------------------


def _assert_matches_oracle(tau, result: RepublishResult, prev_tree) -> None:
    oracle_plan = compile_plan(tau, max_nodes=10**6)
    oracle_tree = oracle_plan.publish(result.instance)
    assert result.tree == oracle_tree
    assert to_xml(result.tree) == oracle_plan.publish_xml(result.instance)
    assert result.edits.apply(prev_tree) == result.tree


class TestRepublish:
    @pytest.mark.parametrize("view", ["tau1", "tau2", "tau3"])
    def test_single_update_matches_full_publish(self, view, request):
        tau = request.getfixturevalue(view)
        instance = example_registrar_instance()
        plan = compile_plan(tau, max_nodes=10**6)
        prev_tree = plan.publish(instance)
        for delta in (
            Delta.insert("prereq", ("cs450", "cs340")),
            Delta.delete("prereq", ("cs240", "cs101")),
            Delta.insert("course", ("cs500", "Compilers", "CS")),
            Delta.delete("course", ("math101", "Calculus", "Math")),
        ):
            result = plan.republish(instance, delta, prev_tree=prev_tree)
            _assert_matches_oracle(tau, result, prev_tree)

    def test_chained_results_feed_back_in(self, tau1):
        instance = example_registrar_instance()
        plan = compile_plan(tau1)
        result = plan.republish(instance, Delta.insert("prereq", ("cs450", "cs340")))
        previous = result.tree
        result = plan.republish(result, Delta.delete("prereq", ("cs240", "cs101")))
        _assert_matches_oracle(tau1, result, previous)

    def test_empty_delta_is_free(self, tau1, registrar_instance):
        plan = compile_plan(tau1)
        prev_tree = plan.publish(registrar_instance)
        result = plan.republish(
            registrar_instance,
            Delta.insert("prereq", ("cs240", "cs101")),  # already present
            prev_tree=prev_tree,
        )
        assert result.instance is registrar_instance
        assert result.tree is prev_tree
        assert result.edits.is_empty()
        assert result.delta.is_empty()

    def test_invalidation_is_per_rule(self, tau1, registrar_instance):
        plan = compile_plan(tau1)
        plan.publish(registrar_instance)
        before = plan.cache_stats
        result = plan.republish(registrar_instance, Delta.insert("prereq", ("cs450", "cs340")))
        stats = plan.cache_stats
        assert stats.invalidated == before.invalidated + result.invalidated
        assert result.invalidated > 0
        assert result.retained > 0
        # tau1's cno/title/text rules read only registers: always retained.
        assert result.retained > result.invalidated

    def test_unchanged_subtrees_are_shared_by_identity(self, tau1):
        instance = generate_registrar_instance(20, max_prereqs=2, seed=4)
        plan = compile_plan(tau1)
        prev_tree = plan.publish(instance)
        result = plan.republish(
            instance, Delta.insert("course", ("zz01", "New Elective", "CS")),
            prev_tree=prev_tree,
        )
        prev_children = {id(child): child for child in prev_tree.children}
        shared = [c for c in result.tree.children if id(c) in prev_children]
        assert shared  # most course subtrees are the same objects as before
        _assert_matches_oracle(tau1, result, prev_tree)

    def test_republish_survives_cache_eviction(self, tau1):
        from repro.engine import Engine

        plan = Engine(cache_instances=1).compile(tau1)
        instance = example_registrar_instance()
        prev_tree = plan.publish(instance)
        plan.publish(generate_registrar_instance(8, seed=1))  # evicts `instance`
        result = plan.republish(
            instance, Delta.insert("prereq", ("cs450", "cs340")), prev_tree=prev_tree
        )
        _assert_matches_oracle(tau1, result, prev_tree)
        assert result.invalidated == 0 and result.retained == 0  # cold start

    @pytest.mark.parametrize("view,steps,size", [("tau1", 10, 25), ("tau3", 8, 20)])
    def test_random_update_sequences(self, view, steps, size, request):
        tau = request.getfixturevalue(view)
        rng = random.Random(hash(view) & 0xFFFF)
        instance = generate_registrar_instance(size, max_prereqs=2, seed=6)
        plan = compile_plan(tau, max_nodes=10**6)
        prev_tree = plan.publish(instance)
        result = RepublishResult(instance, prev_tree, EditScript(), Delta())
        emptied = False
        for step in range(steps):
            if step == steps // 2:
                # The required edge case: a deletion emptying a relation.
                delta = Delta.delete("prereq", *result.instance["prereq"].tuples)
                emptied = True
            else:
                delta = _random_registrar_delta(rng, result.instance)
            previous = result.tree
            result = plan.republish(result, delta)
            _assert_matches_oracle(tau, result, previous)
        assert emptied

    def test_random_update_sequence_tau2_virtual_relation_registers(self, tau2):
        rng = random.Random(9)
        instance = generate_registrar_instance(10, max_prereqs=2, seed=2)
        plan = compile_plan(tau2, max_nodes=10**6)
        result = RepublishResult(instance, plan.publish(instance), EditScript(), Delta())
        for _ in range(3):
            delta = _random_registrar_delta(rng, result.instance)
            previous = result.tree
            result = plan.republish(result, delta)
            _assert_matches_oracle(tau2, result, previous)

    def test_blowup_workload_with_cyclic_updates(self):
        tau = chain_of_diamonds_transducer()
        instance = chain_of_diamonds_instance(5)
        plan = compile_plan(tau, max_nodes=10**6)
        prev_tree = plan.publish(instance)
        for delta in (
            Delta.insert("R", ("a5", "a0")),  # close a cycle: stop condition
            Delta.delete("R", ("a0", "b0_1")),  # halve the first diamond
            Delta.delete("R", *chain_of_diamonds_instance(5)["R"].tuples),
        ):
            result = plan.republish(instance, delta, prev_tree=prev_tree)
            _assert_matches_oracle(tau, result, prev_tree)

    def test_budget_still_enforced_after_republish(self):
        from repro.core.runtime import TransformationLimitError

        tau = chain_of_diamonds_transducer()
        instance = chain_of_diamonds_instance(4)
        plan = compile_plan(tau, max_nodes=10**6)
        plan.publish(instance)
        with pytest.raises(TransformationLimitError):
            plan.republish(instance, Delta.insert("R", ("x", "a0")), max_nodes=5)

    def test_source_relation_with_register_like_name_is_invalidated(self):
        # A *source* relation that happens to be called ``Reg_item`` is only
        # shadowed by the overlay for item-tagged nodes; rules for other
        # tags genuinely read it, so deltas on it must invalidate them.
        from repro.engine import TransducerBuilder

        x = Variable("x")
        phi_doc = ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))
        phi_item = ConjunctiveQuery((x,), (RelationAtom("Reg_item", (x,)),))
        builder = TransducerBuilder("reg-named-source")
        builder.start().emit("q", "doc", phi_doc)
        builder.state("q").on("doc").emit("q", "item", phi_item)
        tau = builder.build()
        instance = Instance.from_dict({"P": [("p1",)], "Reg_item": [("a",)]})
        plan = compile_plan(tau)
        prev_tree = plan.publish(instance)
        result = plan.republish(instance, Delta.insert("Reg_item", ("b",)), prev_tree=prev_tree)
        _assert_matches_oracle(tau, result, prev_tree)
        assert result.tree.find_all("item") != prev_tree.find_all("item")
        previous = result.tree
        result = plan.republish(result, Delta.delete("Reg_item", ("a",), ("b",)))
        _assert_matches_oracle(tau, result, previous)
        assert not result.tree.find_all("item")

    def test_cache_stats_typed_dataclass_and_as_dict(self, tau1, registrar_instance):
        from repro.engine import CacheStats

        plan = compile_plan(tau1)
        plan.publish(registrar_instance)
        plan.republish(registrar_instance, Delta.insert("prereq", ("cs450", "cs340")))
        stats = plan.cache_stats
        assert isinstance(stats, CacheStats)
        as_dict = stats.as_dict()
        for key in ("hits", "misses", "evictions", "instances", "invalidated", "retained"):
            assert as_dict[key] == getattr(stats, key)
        assert as_dict["hit_rate"] == stats.hit_rate


# ---------------------------------------------------------------------------
# The IncrementalPublisher facade.
# ---------------------------------------------------------------------------


class TestIncrementalPublisher:
    def test_stream_of_updates_with_verification(self, tau1):
        publisher = IncrementalPublisher(tau1, example_registrar_instance())
        publisher.insert("course", ("cs500", "Compilers", "CS"))
        publisher.insert("prereq", ("cs500", "cs340"), ("cs500", "cs450"))
        step = publisher.delete("prereq", ("cs240", "cs101"))
        assert step.instance is publisher.instance
        assert publisher.updates == 3
        publisher.verify()
        assert publisher.xml() == to_xml(publisher.tree)
        assert publisher.xml(indent=None).startswith("<db>")

    def test_accepts_precompiled_plan(self, tau1, registrar_instance):
        plan = compile_plan(tau1)
        publisher = IncrementalPublisher(plan, registrar_instance)
        assert publisher.plan is plan
        publisher.apply(Delta.delete("prereq", *registrar_instance["prereq"].tuples))
        publisher.verify()


# ---------------------------------------------------------------------------
# publish_many / publish_iter laziness.
# ---------------------------------------------------------------------------


class TestLazyBatches:
    def test_publish_iter_pulls_instances_on_demand(self, tau1):
        pulled = []

        def instances():
            for seed in range(4):
                pulled.append(seed)
                yield generate_registrar_instance(6, seed=seed)

        plan = compile_plan(tau1)
        stream = plan.publish_iter(instances())
        assert pulled == []  # nothing consumed before iteration starts
        first = next(stream)
        assert pulled == [0] and first.label == "db"
        rest = list(stream)
        assert pulled == [0, 1, 2, 3] and len(rest) == 3

    def test_publish_many_accepts_generators(self, tau1):
        plan = compile_plan(tau1)
        instances = [generate_registrar_instance(6, seed=s) for s in range(3)]
        assert plan.publish_many(iter(instances)) == plan.publish_many(instances)
