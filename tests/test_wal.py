"""The durable write-ahead delta log beneath ``SourceHandle``.

The acceptance bar: kill the server at any point -- including mid-record on
the final append -- and ``recover_source`` restores the source to the exact
pre-crash version with ``publish()`` output byte-identical to an
uninterrupted oracle, on both the row and the columnar backend.  Compaction
(snapshots + segment dropping, including via ``prune()``) must never drop a
segment still needed for replay.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.relational.delta import Delta
from repro.serve import PruneResult, ViewServer
from repro.serve.net.wal import (
    DeltaLog,
    WalError,
    attach_durable,
    recover_source,
)
from repro.workloads.registrar import generate_registrar_instance


def _deltas(count: int, seed: int = 0) -> list[Delta]:
    rng = random.Random(seed)
    out = []
    for step in range(count):
        out.append(
            Delta(
                inserted={
                    "course": {(f"X{step}", f"Title {step}", "CS")},
                    "prereq": {(f"X{step}", f"X{step - 1}")} if step else set(),
                },
                deleted={
                    "course": {(f"X{step - 2}", f"Title {step - 2}", "CS")}
                    if step >= 2 and rng.random() < 0.5
                    else set()
                },
            )
        )
    return out


def _fresh(encoded: bool):
    vs = ViewServer()
    instance = generate_registrar_instance(10, seed=4)
    return vs, instance


def _oracle_bytes(tau1, deltas: list[Delta], encoded: bool) -> str:
    """The publish output of an uninterrupted run over the same commits."""
    vs = ViewServer()
    vs.register_view("t", tau1)
    handle = vs.attach(generate_registrar_instance(10, seed=4), encoded=encoded)
    for delta in deltas:
        handle.commit(delta)
    return vs.publish("t", source=handle, output="bytes")


@pytest.mark.parametrize("encoded", [False, True], ids=["row", "columnar"])
def test_clean_recovery_is_byte_identical(tmp_path, tau1, encoded):
    vs, instance = _fresh(encoded)
    vs.register_view("t", tau1)
    handle = attach_durable(vs, instance, tmp_path / "wal", encoded=encoded)
    deltas = _deltas(6)
    for delta in deltas:
        handle.commit(delta)
    before = vs.publish("t", source=handle, output="bytes")

    vs2 = ViewServer()
    vs2.register_view("t", tau1)
    restored = recover_source(vs2, tmp_path / "wal", name="db")
    assert restored.version == 6
    assert restored.instance.is_encoded == encoded
    after = vs2.publish("t", source=restored, output="bytes")
    assert after == before
    assert after == _oracle_bytes(tau1, deltas, encoded)


@pytest.mark.parametrize("encoded", [False, True], ids=["row", "columnar"])
def test_torn_final_record_recovers_previous_version(tmp_path, tau1, encoded):
    vs, instance = _fresh(encoded)
    vs.register_view("t", tau1)
    handle = attach_durable(vs, instance, tmp_path / "wal", encoded=encoded)
    deltas = _deltas(5, seed=2)
    for delta in deltas:
        handle.commit(delta)
    handle._wal.log.close()

    # Tear the tail: chop bytes off the final record, as a crash mid-write
    # would.  Everything through version 4 must survive.
    segments = sorted((tmp_path / "wal").glob("wal-*.log"))
    tail = segments[-1]
    tail.write_bytes(tail.read_bytes()[:-7])

    vs2 = ViewServer()
    vs2.register_view("t", tau1)
    restored = recover_source(vs2, tmp_path / "wal", name="db")
    assert restored.version == 4
    assert vs2.publish("t", source=restored, output="bytes") == _oracle_bytes(
        tau1, deltas[:4], encoded
    )


def test_recovery_continues_and_recovers_again(tmp_path, tau1):
    vs, instance = _fresh(False)
    handle = attach_durable(vs, instance, tmp_path / "wal")
    deltas = _deltas(4, seed=9)
    for delta in deltas[:3]:
        handle.commit(delta)
    handle._wal.log.close()
    segments = sorted((tmp_path / "wal").glob("wal-*.log"))
    segments[-1].write_bytes(segments[-1].read_bytes()[:-3])

    vs2 = ViewServer()
    vs2.register_view("t", tau1)
    restored = recover_source(vs2, tmp_path / "wal", name="db")
    assert restored.version == 2
    restored.commit(deltas[3])  # keep going after the repair
    assert restored.version == 3

    vs3 = ViewServer()
    vs3.register_view("t", tau1)
    again = recover_source(vs3, tmp_path / "wal", name="db")
    assert again.version == 3
    assert vs3.publish("t", source=again, output="bytes") == _oracle_bytes(
        tau1, deltas[:2] + [deltas[3]], False
    )


def test_mid_log_corruption_raises(tmp_path):
    vs, instance = _fresh(False)
    handle = attach_durable(vs, instance, tmp_path / "wal")
    for delta in _deltas(4):
        handle.commit(delta)
    handle._wal.log.close()

    segment = sorted((tmp_path / "wal").glob("wal-*.log"))[0]
    lines = segment.read_bytes().splitlines(keepends=True)
    lines[1] = b"00000000 {\"corrupted\": true}\n"
    segment.write_bytes(b"".join(lines))

    with pytest.raises(WalError):
        DeltaLog(tmp_path / "wal").recover()


def test_append_rejects_out_of_order_versions(tmp_path):
    vs, instance = _fresh(False)
    handle = attach_durable(vs, instance, tmp_path / "wal")
    handle.commit(_deltas(1)[0])
    log = handle._wal.log
    with pytest.raises(WalError):
        log.append(7, Delta())


def test_begin_refuses_a_dirty_directory(tmp_path):
    vs, instance = _fresh(False)
    attach_durable(vs, instance, tmp_path / "wal")
    vs2 = ViewServer()
    with pytest.raises(WalError):
        attach_durable(vs2, instance, tmp_path / "wal", name="again")


def test_compaction_keeps_segments_needed_for_replay(tmp_path, tau1):
    vs, instance = _fresh(False)
    vs.register_view("t", tau1)
    log = DeltaLog(tmp_path / "wal", segment_records=3)
    handle = attach_durable(vs, instance, log, snapshot_every=4)
    deltas = _deltas(11, seed=5)
    for delta in deltas:
        handle.commit(delta)

    # prune drops old versions from memory; compaction then advances the
    # checkpoint to the oldest *retained* version, not the newest.
    pruned = handle.prune(keep_last=2)
    assert isinstance(pruned, PruneResult)
    assert pruned == 10  # the int-compatible count (pre-existing callers)
    assert pruned.indices == tuple(range(10))
    handle._wal.compact()

    remaining = sorted((tmp_path / "wal").glob("wal-*.log"))
    assert remaining, "compaction must never delete the live tail"
    first_kept = int(remaining[0].stem.split("-")[1])
    assert first_kept > 1, "compaction should drop fully-snapshotted segments"

    vs2 = ViewServer()
    vs2.register_view("t", tau1)
    restored = recover_source(vs2, tmp_path / "wal", name="db")
    assert restored.version == 11
    assert vs2.publish("t", source=restored, output="bytes") == _oracle_bytes(
        tau1, deltas, False
    )


def test_recover_empty_directory_returns_none(tmp_path):
    assert DeltaLog(tmp_path / "nothing").recover() is None
    with pytest.raises(WalError):
        recover_source(ViewServer(), tmp_path / "nothing")


def test_prune_result_semantics():
    result = PruneResult((3, 4, 5))
    assert result == 3  # legacy: compares as the count
    assert result != 2
    assert int(result) == 3
    assert result.count == 3
    assert result.indices == (3, 4, 5)
    assert list(result) == [3, 4, 5]
    empty = PruneResult()
    assert empty == 0
    assert empty.indices == ()


def test_prune_returns_dropped_indices(tau1):
    vs = ViewServer()
    handle = vs.attach(generate_registrar_instance(8, seed=1), name="db")
    for delta in _deltas(4):
        handle.commit(delta)
    result = handle.prune(keep_last=2)
    assert result == 3
    assert result.indices == (0, 1, 2)
    assert [version.index for version in handle.history()] == [3, 4]


# -- group commit ------------------------------------------------------------


def test_fsync_counters_for_serial_commits(tmp_path, tau1):
    vs = ViewServer()
    vs.register_view("t", tau1)
    log = DeltaLog(tmp_path / "wal", fsync=True)
    handle = attach_durable(vs, generate_registrar_instance(10, seed=4), log)
    for delta in _deltas(3):
        handle.commit(delta)
    # serial committers never overlap, so every record pays its own fsync
    assert log.stats() == {"fsyncs": 3, "fsync_batched": 0}

    vs2 = ViewServer()
    vs2.register_view("t", tau1)
    restored = recover_source(vs2, tmp_path / "wal", name="db")
    assert restored.version == 3
    assert vs2.publish("t", source=restored, output="bytes") == vs.publish(
        "t", source=handle, output="bytes"
    )


def test_group_commit_shares_one_fsync(tmp_path, monkeypatch):
    import threading

    import repro.serve.net.wal as wal_module

    instance = generate_registrar_instance(4, seed=1)
    decoy = DeltaLog(tmp_path / "decoy", fsync=False)
    log = DeltaLog(tmp_path / "log", fsync=False)
    decoy.begin(0, instance)
    log.begin(0, instance)
    decoy.fsync = log.fsync = True  # armed after begin: snapshot syncs stay out

    real_fsync = os.fsync
    entered = threading.Event()
    gate = threading.Event()

    def gated_fsync(fd):
        entered.set()
        gate.wait(10)
        real_fsync(fd)

    monkeypatch.setattr(wal_module.os, "fsync", gated_fsync)

    def _wait_for(predicate):
        deadline = time.monotonic() + 10
        while not predicate():
            assert time.monotonic() < deadline, "timed out waiting for flusher state"
            time.sleep(0.001)

    deltas = _deltas(3, seed=7)
    # park the flusher inside the decoy's fsync so further appends pile up
    blocker = threading.Thread(target=decoy.append, args=(1, deltas[0]))
    blocker.start()
    assert entered.wait(10)

    # Handle-level commits serialize under the handle lock, so two records
    # can only pend on one file through direct concurrent appends; disarm
    # the ordering check (the second append starts before the first has
    # recorded its version).
    log._last_version = None
    first = threading.Thread(target=log.append, args=(1, deltas[1]))
    first.start()
    _wait_for(lambda: len(wal_module._FLUSHER._queue) == 1)
    second = threading.Thread(target=log.append, args=(2, deltas[2]))
    second.start()
    _wait_for(lambda: len(wal_module._FLUSHER._queue) == 2)

    gate.set()
    for thread in (blocker, first, second):
        thread.join(timeout=10)
        assert not thread.is_alive()

    # both pending records were made durable by ONE shared fsync
    assert log.stats() == {"fsyncs": 1, "fsync_batched": 2}
    assert decoy.stats() == {"fsyncs": 1, "fsync_batched": 0}
    log.close()
    decoy.close()


def test_fsync_failure_propagates_to_the_committer(tmp_path, monkeypatch):
    import repro.serve.net.wal as wal_module

    log = DeltaLog(tmp_path / "wal", fsync=False)
    log.begin(0, generate_registrar_instance(4, seed=1))
    log.fsync = True

    def failing_fsync(fd):
        raise OSError("disk on fire")

    monkeypatch.setattr(wal_module.os, "fsync", failing_fsync)
    with pytest.raises(OSError, match="disk on fire"):
        log.append(1, _deltas(1)[0])
    log.close()
