"""Tests for the publishing-language front-ends and Table I."""

from __future__ import annotations

import pytest

from repro.core import classify, publish
from repro.languages import TABLE_I, TemplateError, characterize, example_views
from repro.languages.common import compile_template, element
from repro.languages.dad import DadSqlMappingView
from repro.languages.forxml import ForXmlView
from repro.languages.registry import (
    example_atg,
    example_forxml,
    example_treeql,
    example_xmlgen,
)
from repro.languages.sqlxml import SqlXmlView
from repro.languages.treeql import TreeQLView
from repro.logic import parse_cq
from repro.logic.ifp import transitive_closure_query
from repro.workloads.registrar import tau3_courses_without_db_prereq


class TestTableI:
    def test_every_entry_has_distinct_language_vendor_pair(self):
        pairs = {(entry.vendor, entry.language) for entry in TABLE_I}
        assert len(pairs) == len(TABLE_I)

    @pytest.mark.parametrize("entry", TABLE_I, ids=lambda e: f"{e.vendor}-{e.language}")
    def test_example_compiles_into_declared_class(self, entry):
        compiled = entry.build_example()
        assert entry.expected_class.contains(characterize(compiled)), (
            f"{entry.language} compiled into {characterize(compiled)}, "
            f"outside {entry.expected_class}"
        )

    @pytest.mark.parametrize("entry", TABLE_I, ids=lambda e: f"{e.vendor}-{e.language}")
    def test_example_runs_on_registrar_database(self, entry, registrar_instance):
        compiled = entry.build_example()
        output = publish(compiled, registrar_instance, max_nodes=200_000)
        assert output.size() > 1

    def test_example_views_helper(self):
        views = example_views()
        assert len(views) == len(TABLE_I) - 1 or len(views) == len(TABLE_I)

    def test_only_xmlgen_and_atg_are_recursive(self):
        recursive = {
            entry.language for entry in TABLE_I if entry.expected_class.recursive
        }
        assert recursive == {"DBMS_XMLGEN", "ATG"}


class TestLanguageSemantics:
    def test_forxml_matches_tau3(self, registrar_instance, tau3):
        """The Figure 2 FOR-XML view produces the same tree as the Figure 1(c) transducer."""
        compiled = example_forxml()
        assert publish(compiled, registrar_instance) == publish(
            tau3_courses_without_db_prereq(), registrar_instance
        )

    def test_xmlgen_expands_hierarchy(self, registrar_instance):
        compiled = example_xmlgen()
        output = publish(compiled, registrar_instance)
        # The recursive connect-by nests course elements under course elements.
        nested = [
            node
            for node in output.walk()
            if node.label == "course" and any(c.label == "course" for c in node.children)
        ]
        assert nested

    def test_atg_conforms_to_its_dtd(self):
        from repro.xmltree.dtd import DTD, concat, star
        from repro.workloads.registrar import generate_registrar_instance

        # An acyclic prerequisite hierarchy: with cycles the stop condition cuts
        # a repeated course node short, which (by design) escapes the DTD; the
        # typechecking question is future work in the paper.
        acyclic = generate_registrar_instance(12, cycle_fraction=0.0, seed=11)
        compiled = example_atg()
        output = publish(compiled, acyclic)
        from repro.xmltree.dtd import sym

        dtd = DTD(
            "db",
            {
                "db": star("course"),
                "course": concat("cno", "title", "prereq"),
                "prereq": star("course"),
                "cno": sym("text"),
                "title": sym("text"),
            },
        )
        assert dtd.conforms(output)

    def test_treeql_virtual_wrapper_is_spliced_out(self, registrar_instance):
        compiled = example_treeql()
        output = publish(compiled, registrar_instance)
        assert "group" not in output.labels()
        assert {child.label for child in output.children} == {"course"}


class TestFrontEndValidation:
    def test_forxml_rejects_ifp(self):
        with pytest.raises(TemplateError):
            ForXmlView("db", (element("course", transitive_closure_query("prereq")),))

    def test_forxml_rejects_virtual(self):
        with pytest.raises(TemplateError):
            ForXmlView("db", (element("course", parse_cq("ans(c) :- course(c, t, d)"), virtual=True),))

    def test_sqlxml_oracle_rejects_ifp(self):
        with pytest.raises(TemplateError):
            SqlXmlView(
                "db",
                (element("course", transitive_closure_query("prereq")),),
                allow_recursive_sql=False,
            )

    def test_sqlxml_ibm_accepts_ifp(self):
        view = SqlXmlView("db", (element("pair", transitive_closure_query("prereq")),))
        assert classify(view.compile()).logic.name == "IFP"

    def test_treeql_rejects_fo(self, tau3):
        from repro.logic.fo import FormulaQuery, Not, Rel
        from repro.logic.terms import Variable

        x = Variable("x")
        with pytest.raises(TemplateError):
            TreeQLView("db", (element("a", FormulaQuery((x,), Not(Rel("P", (x,))))),))

    def test_dad_sql_mapping_requires_matching_tags(self):
        with pytest.raises(TemplateError):
            DadSqlMappingView("db", parse_cq("ans(c, t) :- course(c, t, d)"), ("only-one",))

    def test_template_top_level_needs_query(self):
        with pytest.raises(TemplateError):
            compile_template("db", (element("a"),), "bad")

    def test_template_conflicting_arities(self):
        with pytest.raises(TemplateError):
            compile_template(
                "db",
                (
                    element("a", parse_cq("ans(x) :- R(x, y)")),
                    element("a", parse_cq("ans(x, y) :- R(x, y)")),
                ),
                "bad",
            )
