"""The sharded serving cluster: routing, handoff, restarts, cluster stats.

One module-scoped two-shard :class:`ShardCluster` backs every test (worker
processes are expensive to spawn); each test works in its own namespaces so
the shared cluster never couples them.  The disruptive worker-restart test
runs last in definition order.
"""

from __future__ import annotations

import pytest

from repro.relational.delta import Delta
from repro.serve import ViewServer
from repro.serve.net import (
    NetClient,
    NetClientError,
    ShardCluster,
    ShardError,
    resolve_catalog,
    shard_for,
)
from repro.serve.net.app import default_catalog
from repro.workloads.registrar import example_registrar_instance


@pytest.fixture(scope="module")
def cluster():
    with ShardCluster(shards=2) as running:
        yield running


def _client(cluster, namespace):
    host, port = cluster.address
    return NetClient(host, port, namespace=namespace)


def _ns_on(shard: int, tag: str) -> str:
    """A namespace name the static crc32 table routes to ``shard``."""
    for step in range(64):
        name = f"{tag}{step}"
        if shard_for(name, 2) == shard:
            return name
    raise AssertionError(f"no {tag}* namespace lands on shard {shard}")


def _oracle(deltas: list[Delta]) -> str:
    vs = ViewServer()
    vs.register_view("t", default_catalog()["tau1"]())
    handle = vs.attach(example_registrar_instance(), name="db")
    for delta in deltas:
        handle.commit(delta)
    return vs.publish("t", source=handle, output="bytes")


def test_shard_for_is_stable_and_in_range():
    for shards in (1, 2, 3, 8):
        for name in ("default", "alpha", "tenant-42", "über"):
            owner = shard_for(name, shards)
            assert 0 <= owner < shards
            assert shard_for(name, shards) == owner  # deterministic
    assert shard_for("anything", 1) == 0


def test_resolve_catalog_imports_by_reference():
    catalog = resolve_catalog("repro.serve.net.app:default_catalog")
    assert set(catalog) >= {"tau1", "tau2", "tau3"}
    with pytest.raises(ShardError):
        resolve_catalog("no-colon-here")
    with pytest.raises(ShardError):
        resolve_catalog("repro.serve.net.app:no_such_attr")


def test_round_trip_through_router_matches_oracle(cluster):
    delta = Delta.insert("course", ("CS901", "Routed", "CS"))
    for shard in (0, 1):
        ns = _ns_on(shard, f"round{shard}x")
        assert cluster.router.owner(ns) == shard
        client = _client(cluster, ns)
        client.register_view("tau1")
        client.attach(example_registrar_instance(), name="db", durable=True)
        client.commit("db", delta)
        served = client.publish("tau1", source="db")
        assert served.version == 1
        assert served.document == _oracle([delta])
        client.close()


def test_namespaces_are_isolated_across_shards(cluster):
    a = _client(cluster, _ns_on(0, "isoA"))
    b = _client(cluster, _ns_on(1, "isoB"))
    for client in (a, b):
        client.register_view("tau1")
        client.attach(example_registrar_instance(), name="db", durable=True)
    a.commit("db", Delta.insert("course", ("CS902", "OnlyA", "CS")))
    assert "CS902" in a.publish("tau1", source="db").document
    assert "CS902" not in b.publish("tau1", source="db").document
    a.close()
    b.close()


def test_subscription_tunnels_through_the_router(cluster):
    client = _client(cluster, _ns_on(1, "tun"))
    client.register_view("tau1")
    client.attach(example_registrar_instance(), name="db", durable=True)
    with client.subscribe("tau1", source="db") as sub:
        init = sub.recv()
        assert init["type"] == "init"
        assert init["version"] == 0
        out = client.commit("db", Delta.insert("course", ("CS903", "Pushed", "CS")))
        message = sub.recv()
        assert message["type"] == "edits"
        assert message["version"] == out["version"]
    client.close()


@pytest.mark.parametrize("encoded", [False, True], ids=["row", "columnar"])
def test_rebalance_is_byte_identical(cluster, encoded):
    ns = _ns_on(0, f"move{int(encoded)}e")
    client = _client(cluster, ns)
    client.register_view("tau1")
    client.attach(example_registrar_instance(), name="db", durable=True, encoded=encoded)
    deltas = [Delta.insert("course", (f"CS91{step}", "Mig", "CS")) for step in range(3)]
    for delta in deltas:
        client.commit("db", delta)
    before = client.publish("tau1", source="db")

    moved = client.rebalance(ns, 1)
    assert moved["moved"] is True
    assert moved["shard"] == 1
    assert [source["name"] for source in moved["sources"]] == ["db"]
    assert cluster.router.owner(ns) == 1

    after = client.publish("tau1", source="db")
    assert after.version == before.version
    assert after.document == before.document  # byte-identical across handoff

    # the namespace keeps working on its new shard
    extra = Delta.insert("course", ("CS919", "PostMove", "CS"))
    client.commit("db", extra)
    assert client.publish("tau1", source="db").document == _oracle(deltas + [extra])
    client.close()


def test_rebalance_to_current_owner_is_a_noop(cluster):
    ns = _ns_on(1, "stay")
    client = _client(cluster, ns)
    result = client.rebalance(ns, 1)
    assert result["moved"] is False
    client.close()


def test_rebalance_rejects_bad_requests(cluster):
    client = _client(cluster, "errors")
    with pytest.raises(NetClientError) as caught:
        client.rebalance("errors", 99)
    assert caught.value.status == 400
    with pytest.raises(NetClientError) as caught:
        client.rebalance("errors", True)
    assert caught.value.status == 400

    # a namespace holding a non-durable source cannot be handed off: there
    # is no WAL to replay on the target shard
    ns = _ns_on(0, "nowal")
    volatile = _client(cluster, ns)
    volatile.register_view("tau1")
    volatile.attach(example_registrar_instance(), name="db", durable=False)
    with pytest.raises(NetClientError) as caught:
        volatile.rebalance(ns, 1)
    assert caught.value.status == 409
    assert cluster.router.owner(ns) == 0  # the table did not flip
    client.close()
    volatile.close()


def test_cluster_stats_aggregates_shards(cluster):
    ns = _ns_on(0, "stats")
    client = _client(cluster, ns)
    client.register_view("tau1")
    client.attach(example_registrar_instance(), name="db", durable=True)
    client.commit("db", Delta.insert("course", ("CS904", "Counted", "CS")))
    client.publish("tau1", source="db")

    stats = client.cluster_stats()
    assert [shard["shard"] for shard in stats["shards"]] == [0, 1]
    assert stats["table"][ns] == 0
    assert stats["totals"]["commits"] >= 1
    assert stats["totals"]["publishes"] >= 1
    assert stats["totals"]["requests"] == sum(
        shard["net"]["requests"] for shard in stats["shards"]
    )
    assert stats["router"]["requests"] > 0
    owner = next(shard for shard in stats["shards"] if shard["shard"] == 0)
    assert ns in owner["namespaces"]
    client.close()


def test_worker_restart_replays_from_wal(cluster):
    # LAST in the module: killing a worker is the most disruptive action.
    ns = _ns_on(0, "boom")
    client = _client(cluster, ns)
    client.register_view("tau1")
    client.attach(example_registrar_instance(), name="db", durable=True)
    deltas = [Delta.insert("course", (f"CS92{step}", "Crash", "CS")) for step in range(2)]
    for delta in deltas:
        client.commit("db", delta)
    before = client.publish("tau1", source="db")

    cluster.restart_worker(0, kill=True)

    after = client.publish("tau1", source="db")
    assert after.version == before.version
    assert after.document == before.document
    extra = Delta.insert("course", ("CS929", "Alive", "CS"))
    client.commit("db", extra)
    assert client.publish("tau1", source="db").document == _oracle(deltas + [extra])
    client.close()


# ---------------------------------------------------------------------------
# Output typechecking through the router: rejection parity + DTD replay.
# ---------------------------------------------------------------------------


def _shard_dtds():
    from repro.xmltree.dtd import DTD, concat, opt, star, sym

    text = sym("text")
    strict = DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": opt(text),
            "title": opt(text),
        },
    )
    undecided = DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title"), sym("title")),
            "cno": opt(text),
            "title": opt(text),
        },
    )
    return strict, undecided


def test_router_rejects_refuted_views_like_a_single_server(cluster):
    strict, _ = _shard_dtds()
    ns = _ns_on(0, "refuse")
    client = _client(cluster, ns)
    with pytest.raises(NetClientError) as caught:
        client.register_view("tau1", output_dtd=strict)
    assert caught.value.status == 422
    assert caught.value.payload["typecheck"]["verdict"] == "refuted"
    assert "witness" in caught.value.payload
    # the rejection was not recorded: the name is still free on the shard
    assert client.register_view("tau1")["name"] == "tau1"
    client.close()


def test_rebalance_replays_the_output_dtd(cluster):
    _, undecided = _shard_dtds()
    ns = _ns_on(0, "dtdmove")
    client = _client(cluster, ns)
    out = client.register_view("tau3", output_dtd=undecided)
    assert out["typecheck"]["verdict"] == "undecided"
    client.attach(example_registrar_instance(), name="db", durable=True)

    moved = client.rebalance(ns, 1)
    assert moved["moved"] is True

    # the replayed registration still carries the DTD: publishing the
    # non-conforming view is refused on the new shard too
    with pytest.raises(NetClientError) as caught:
        client.publish("tau3", source="db")
    assert caught.value.status == 422
    assert caught.value.payload["view"] == "tau3"
    assert caught.value.payload["violation"]["location"].startswith("/db/course[")
    client.close()
