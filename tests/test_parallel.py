"""The multi-core tier: repro.parallel and the pool seams of the server.

The contract under test is one sentence long: **pooled output is
byte-identical to serial output, always** -- on every backend x maintenance
x output combination, for single-publish subtree fan-out
(:func:`parallel_publish_bytes`), batched serving
(:meth:`ViewServer.publish_batch`) and the network tier's sharded
subscriber fan-out -- and every pool failure (worker crash, unpicklable
artefact, dead fleet) degrades to the serial path rather than to an error
or to different bytes.  Alongside that: snapshot isolation under
commit-during-publish, exception transparency across the process boundary,
and torn-counter-free cache stats under concurrent ``publish()``.
"""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.core.runtime import TransformationLimitError
from repro.engine.plan import compile_plan
from repro.parallel import (
    NotShippable,
    PoolBroken,
    WorkerCrashed,
    WorkerPool,
    parallel_publish_bytes,
)
from repro.relational.columnar import encoded_twin
from repro.relational.delta import Delta
from repro.serve import ViewServer
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    example_registrar_instance,
    registrar_view_suite,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.diff import trees_equal


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(workers=2) as shared:
        yield shared


def _fresh_views():
    """(name, transducer, instance) triples covering tau1-tau3 + blow-ups."""
    registrar = example_registrar_instance()
    return [
        ("tau1", tau1_prerequisite_hierarchy(), registrar),
        ("tau2", tau2_prerequisite_closure("CS"), registrar),
        ("tau3", tau3_courses_without_db_prereq(), registrar),
        ("diamonds", chain_of_diamonds_transducer(), chain_of_diamonds_instance(5)),
        ("counter", binary_counter_transducer(), binary_counter_instance(2)),
    ]


class TestPoolBasics:
    def test_ping_round_trip_and_sharding(self, pool):
        assert pool.submit("ping", "hello").result() == "hello"
        # Equal keys land on one worker; the mapping is stable across calls.
        first = pool._worker_for(("view", "binding"))
        assert all(
            pool._worker_for(("view", "binding")) is first for _ in range(8)
        )

    def test_install_is_idempotent_per_object(self, pool):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        assert pool.install(plan) == pool.install(plan)

    def test_unpicklable_object_raises_not_shippable(self, pool):
        with pytest.raises(NotShippable):
            pool.install(lambda row: row)

    def test_worker_task_error_carries_traceback(self, pool):
        from repro.parallel.pool import WorkerTaskError

        future = pool.submit("publish_bytes", 10**9, 10**9)  # unknown tokens
        with pytest.raises((KeyError, WorkerTaskError)):
            future.result()

    def test_closed_pool_is_broken(self):
        small = WorkerPool(workers=1)
        small.close()
        assert small.broken
        with pytest.raises(PoolBroken):
            small.submit("ping", 1)


class TestParallelPublishBytes:
    """Part (a): sibling subtrees of one publish fanned across workers."""

    @pytest.mark.parametrize("encoded", [False, True], ids=["row", "columnar"])
    @pytest.mark.parametrize("indent", [2, None], ids=["pretty", "compact"])
    def test_byte_identity_all_views(self, pool, encoded, indent):
        for name, tau, instance in _fresh_views():
            if encoded:
                instance = encoded_twin(instance)
            serial = compile_plan(tau).publish_bytes(instance, indent=indent)
            plan = compile_plan(tau)
            pooled = parallel_publish_bytes(
                plan, instance, pool, indent=indent
            )
            assert pooled == serial, name

    def test_warm_cache_and_republish_after_parallel(self, pool):
        # Spans merged back from workers must serve a later serial publish
        # and survive an incremental republish without corrupting output.
        tau = tau1_prerequisite_hierarchy()
        instance = example_registrar_instance()
        plan = compile_plan(tau)
        first = parallel_publish_bytes(plan, instance, pool)
        assert plan.publish_bytes(instance) == first  # cache-hot serial
        assert parallel_publish_bytes(plan, instance, pool) == first

    def test_budget_error_matches_serial(self, pool):
        tau = chain_of_diamonds_transducer()
        instance = chain_of_diamonds_instance(6)
        plan = compile_plan(tau, max_nodes=10)
        with pytest.raises(TransformationLimitError):
            plan.publish_bytes(instance)
        plan = compile_plan(tau, max_nodes=10)
        with pytest.raises(TransformationLimitError):
            parallel_publish_bytes(plan, instance, pool)

    def test_serial_fallback_without_pool(self):
        tau = tau1_prerequisite_hierarchy()
        instance = example_registrar_instance()
        serial = compile_plan(tau).publish_bytes(instance)
        assert parallel_publish_bytes(compile_plan(tau), instance, None) == serial

    def test_serial_fallback_when_install_fails(self, pool, monkeypatch):
        tau = tau1_prerequisite_hierarchy()
        instance = example_registrar_instance()
        serial = compile_plan(tau).publish_bytes(instance)
        monkeypatch.setattr(
            pool,
            "install",
            lambda obj: (_ for _ in ()).throw(NotShippable("forced")),
        )
        assert parallel_publish_bytes(compile_plan(tau), instance, pool) == serial


class TestPublishBatch:
    """Part (b): concurrent ``publish()`` calls behind ``ViewServer(pool=)``."""

    def _servers(self, pool):
        serial, pooled = ViewServer(), ViewServer(pool=pool)
        handles = []
        for server in (serial, pooled):
            for name, (factory, params) in registrar_view_suite().items():
                server.register_view(name, factory, params=params)
            server.register_view("diamonds", chain_of_diamonds_transducer())
            server.register_view("counter", binary_counter_transducer())
            handles.append(
                {
                    "reg": server.attach(example_registrar_instance(), name="reg"),
                    "dia": server.attach(
                        chain_of_diamonds_instance(5), name="dia"
                    ),
                    "cnt": server.attach(
                        binary_counter_instance(2), name="cnt", encoded=True
                    ),
                }
            )
        return serial, pooled, handles[0], handles[1]

    @staticmethod
    def _requests(handles):
        axes = itertools.product(
            ("bytes", "compact", "xml"),
            ("auto", "row", "columnar"),
            ("auto", "full", "incremental"),
        )
        requests = []
        for output, backend, maintenance in axes:
            requests.append(
                dict(
                    view="hierarchy",
                    params={"department": "CS"},
                    source=handles["reg"],
                    output=output,
                    backend=backend,
                    maintenance=maintenance,
                )
            )
        requests.append(dict(view="diamonds", source=handles["dia"], output="bytes"))
        requests.append(
            dict(view="counter", source=handles["cnt"], output="bytes",
                 backend="columnar")
        )
        requests.append(dict(view="counter", source=handles["cnt"], output="tree"))
        return requests

    def test_byte_identity_across_all_axes(self, pool):
        serial, pooled, serial_handles, pooled_handles = self._servers(pool)
        expected = [serial.publish(**r) for r in self._requests(serial_handles)]
        got = pooled.publish_batch(self._requests(pooled_handles))
        assert len(got) == len(expected)
        for want, have in zip(expected, got):
            if isinstance(want, str):
                assert have == want
            else:
                assert trees_equal(want, have)

    def test_byte_identity_after_commits(self, pool):
        serial, pooled, serial_handles, pooled_handles = self._servers(pool)
        delta = Delta.insert("course", ("CS901", "A", "CS"))
        serial_handles["reg"].commit(delta)
        pooled_handles["reg"].commit(delta)
        requests = [
            dict(view="hierarchy", params={"department": "CS"},
                 source=handles["reg"], output="bytes")
            for handles in (serial_handles, pooled_handles)
        ]
        assert pooled.publish_batch([requests[1]]) == [serial.publish(**requests[0])]

    def test_snapshot_isolation_of_pinned_batch(self, pool):
        _, pooled, _, handles = self._servers(pool)
        request = dict(
            view="hierarchy", params={"department": "CS"},
            source=handles["reg"], version=0, output="bytes",
        )
        before = pooled.publish(**request)
        handles["reg"].commit(Delta.insert("course", ("CS950", "New", "CS")))
        # A pinned reader is unaffected by the later commit -- including
        # when the publish runs on a worker that got the snapshot shipped.
        assert pooled.publish_batch([request]) == [before]

    def test_commit_racing_a_pinned_batch(self, pool):
        _, pooled, _, handles = self._servers(pool)
        request = dict(
            view="hierarchy", params={"department": "CS"},
            source=handles["reg"], version=0, output="bytes",
        )
        before = pooled.publish(**request)
        stop = threading.Event()

        def churn():
            index = 0
            while not stop.is_set():
                handles["reg"].commit(
                    Delta.insert("course", (f"CS9{index:02d}", "Racing", "CS"))
                )
                index += 1

        committer = threading.Thread(target=churn)
        committer.start()
        try:
            for _ in range(5):
                assert pooled.publish_batch([request] * 4) == [before] * 4
        finally:
            stop.set()
            committer.join()

    def test_pool_stats_surface_in_server_stats_and_explain(self, pool):
        _, pooled, _, handles = self._servers(pool)
        pooled.publish_batch(
            [
                dict(view="hierarchy", params={"department": "CS"},
                     source=handles["reg"], output="bytes"),
                dict(view="diamonds", source=handles["dia"], output="bytes"),
            ]
        )
        stats = pooled.stats()
        assert stats.pool is not None
        assert stats.pool["workers"] == 2
        assert stats.pool["tasks_dispatched"] > 0
        assert "pool:" in stats.describe()
        as_dict = stats.as_dict()
        assert as_dict["pool"]["workers"] == 2
        report = pooled.explain("hierarchy", params={"department": "CS"})
        assert report.pool is not None and "pool:" in report.describe()
        serial = ViewServer()
        serial.register_view("tau1", tau1_prerequisite_hierarchy())
        assert serial.stats().pool is None

    def test_serial_server_has_no_pool(self):
        server = ViewServer()
        assert server.pool is None
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        server.attach(example_registrar_instance())
        # publish_batch without a pool is exactly a serial loop.
        serial = server.publish("tau1", output="bytes")
        assert server.publish_batch([dict(view="tau1", output="bytes")]) == [serial]


class TestDegradation:
    """Crashes and unshippable work fall back to serial, never to errors."""

    def test_worker_crash_mid_batch_falls_back(self):
        with WorkerPool(workers=2) as crashy:
            server = ViewServer(pool=crashy)
            server.register_view("tau1", tau1_prerequisite_hierarchy())
            handle = server.attach(example_registrar_instance())
            oracle = server.publish("tau1", source=handle, output="bytes")
            crashy.submit("ping", 1).result()  # spin the fleet up
            for worker in crashy._workers:
                worker.process.terminate()
                worker.process.join(timeout=5)
            # Dead workers fail the futures; publish_batch re-runs serially.
            out = server.publish_batch(
                [dict(view="tau1", source=handle, output="bytes")] * 3
            )
            assert out == [oracle] * 3
            assert crashy.broken

    def test_parallel_publish_survives_dead_fleet(self):
        with WorkerPool(workers=1) as crashy:
            tau = tau1_prerequisite_hierarchy()
            instance = example_registrar_instance()
            serial = compile_plan(tau).publish_bytes(instance)
            crashy.submit("ping", 1).result()
            for worker in crashy._workers:
                worker.process.terminate()
                worker.process.join(timeout=5)
            assert parallel_publish_bytes(
                compile_plan(tau), instance, crashy
            ) == serial

    def test_crashed_future_raises_worker_crashed(self):
        with WorkerPool(workers=1) as crashy:
            crashy.submit("ping", 1).result()
            worker = crashy._workers[0]
            # A long-running handler is not needed: terminate first, then
            # observe the already-dispatched future fail.
            future = crashy.submit("ping", 2)
            worker.process.terminate()
            worker.process.join(timeout=5)
            with pytest.raises((WorkerCrashed, PoolBroken)):
                future.result(timeout=10)


class TestConcurrentServing:
    """Satellite: no torn cache counters under concurrent ``publish()``."""

    def test_concurrent_publish_is_consistent(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        server.register_view("tau2", tau2_prerequisite_closure("CS"))
        handle = server.attach(example_registrar_instance())
        oracles = {
            name: server.publish(name, source=handle, output="bytes")
            for name in ("tau1", "tau2")
        }
        errors: list[BaseException] = []

        def hammer(name):
            try:
                for _ in range(20):
                    assert (
                        server.publish(name, source=handle, output="bytes")
                        == oracles[name]
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(name,))
            for name in ("tau1", "tau2", "tau1", "tau2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for view in server.stats().views:
            cache = view.cache
            # Counters moved under a lock: totals must be coherent (no torn
            # half-updates showing e.g. negative or impossible values).
            assert cache["hits"] >= 0 and cache["misses"] >= 0
            assert cache["rendered_hits"] + cache["rendered_misses"] > 0
            assert 0.0 <= cache["hit_rate"] <= 1.0


class TestShardedFanOut:
    """Part (c): per-commit subscriber delivery sharded across the pool."""

    def test_pooled_delivery_matches_oracle(self, pool):
        from repro.serve.net import NetClient, NetServerThread, edits_of
        from repro.xmltree.diff import tree_from_wire

        with NetServerThread("127.0.0.1", 0, pool=pool) as srv:
            client = NetClient(*srv.address, namespace="test")
            client.register_view("tau1")
            client.register_view("tau2")
            client.attach(example_registrar_instance(), name="db")
            with client.subscribe("tau1", source="db") as one, client.subscribe(
                "tau2", source="db"
            ) as two, client.subscribe("tau1", source="db") as echo:
                tree_one = tree_from_wire(one.recv()["document"])
                tree_two = tree_from_wire(two.recv()["document"])
                echo.recv()
                commits = [
                    Delta.insert("course", ("CS901", "A", "CS")),
                    Delta.insert("prereq", ("CS901", "CS240")),
                    Delta.delete("prereq", ("CS901", "CS240")),
                ]
                for version, delta in enumerate(commits, start=1):
                    out = client.commit("db", delta)
                    assert out["delivered"] == 3
                    message = one.recv()
                    # Same-group subscribers share one encoded frame.
                    assert echo.recv() == message
                    assert message["version"] == version
                    tree_one = edits_of(message).apply(tree_one)
                    tree_two = edits_of(two.recv()).apply(tree_two)
                with client.subscribe("tau1", source="db") as check:
                    fresh = tree_from_wire(check.recv()["document"])
                assert trees_equal(tree_one, fresh)
            stats = client.stats()
            # Two groups with pending events per commit -> sharded encoding.
            assert stats["net"]["sharded_groups"] == 2 * len(commits)

    def test_single_group_encodes_inline(self, pool):
        from repro.serve.net import NetClient, NetServerThread

        with NetServerThread("127.0.0.1", 0, pool=pool) as srv:
            client = NetClient(*srv.address, namespace="test")
            client.register_view("tau1")
            client.attach(example_registrar_instance(), name="db")
            with client.subscribe("tau1", source="db") as sub:
                sub.recv()
                client.commit("db", Delta.insert("course", ("CS903", "C", "CS")))
                assert sub.recv()["type"] == "edits"
            # One group's encode is not worth a process round trip.
            assert client.stats()["net"]["sharded_groups"] == 0


class TestPlanPickling:
    """The process boundary: what ships, and what deliberately does not."""

    def test_plan_ships_without_caches(self):
        import pickle

        tau = tau2_prerequisite_closure("CS")
        instance = example_registrar_instance()
        plan = compile_plan(tau)
        warm = plan.publish_bytes(instance)
        clone = pickle.loads(pickle.dumps(plan))
        stats = clone.cache_stats.as_dict()
        assert stats["hits"] == stats["misses"] == stats["instances"] == 0
        assert clone.publish_bytes(instance) == warm

    def test_encoded_instance_round_trips(self):
        import pickle

        instance = encoded_twin(binary_counter_instance(2))
        clone = pickle.loads(pickle.dumps(instance))
        tau = binary_counter_transducer()
        assert compile_plan(tau).publish_bytes(clone) == compile_plan(
            tau
        ).publish_bytes(instance)

    def test_encoder_ships_decode_table_not_caches(self):
        import pickle

        from repro.relational.columnar import encoding_of

        instance = encoded_twin(example_registrar_instance())
        tau = tau1_prerequisite_hierarchy()
        compile_plan(tau).publish_bytes(instance)  # warm the encoder caches
        encoder = encoding_of(instance)
        assert encoder._value_fragments  # warm on this side...
        clone = pickle.loads(pickle.dumps(encoder))
        # ...but only the decode table crossed; the id map is rebuilt.
        assert clone.values == encoder.values
        assert clone._ids == encoder._ids
        assert not clone._value_fragments and not clone._row_cache
