"""The asyncio network tier: HTTP round trips, ETags, subscriptions, replay.

Everything runs against a real :class:`NetServerThread` on a loopback port
-- no mocked transports -- so the tests cover the protocol layer, the
routing and the ViewServer integration together.
"""

from __future__ import annotations

import pytest

from repro.relational.delta import Delta
from repro.serve import ViewServer
from repro.serve.net import NetClient, NetClientError, NetServerThread, edits_of
from repro.workloads.registrar import example_registrar_instance
from repro.xmltree.diff import tree_from_wire, trees_equal


@pytest.fixture()
def server():
    with NetServerThread("127.0.0.1", 0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return NetClient(*server.address, namespace="test")


def _setup(client):
    client.register_view("tau1")
    client.attach(example_registrar_instance(), name="db")


def test_health_and_unknown_routes(server):
    client = NetClient(*server.address)
    assert client.healthz()["ok"] is True
    with pytest.raises(NetClientError) as caught:
        client._json("GET", "/no/such/route")
    assert caught.value.status == 404
    status, _, _ = client.request("PUT", "/healthz")
    assert status == 405


def test_register_attach_commit_publish_round_trip(client):
    _setup(client)
    assert [view["name"] for view in client.views()] == ["tau1"]
    assert [source["name"] for source in client.sources()] == ["db"]

    first = client.publish("tau1", source="db")
    assert first.status == 200
    assert first.version == 0
    assert first.document.startswith("<db>")

    out = client.commit("db", Delta.insert("course", ("CS999", "Capstone", "CS")))
    assert out["version"] == 1
    second = client.publish("tau1", source="db")
    assert second.version == 1
    assert "CS999" in second.document

    # the HTTP bytes equal an in-process oracle over the same story
    vs = ViewServer()
    from repro.serve.net.app import default_catalog

    vs.register_view("tau1", default_catalog()["tau1"]())
    handle = vs.attach(example_registrar_instance(), name="db")
    handle.commit(Delta.insert("course", ("CS999", "Capstone", "CS")))
    assert second.document == vs.publish("tau1", source=handle, output="bytes")


def test_etag_304_and_invalidation(client):
    _setup(client)
    first = client.publish("tau1", source="db")
    assert first.etag

    cached = client.publish("tau1", source="db", etag=first.etag)
    assert cached.not_modified
    assert cached.document is None

    client.commit("db", Delta.insert("course", ("CS888", "More", "CS")))
    fresh = client.publish("tau1", source="db", etag=first.etag)
    assert fresh.status == 200
    assert fresh.etag != first.etag


def test_response_body_cache_serves_repeat_publishes(client):
    # A client that does not revalidate still gets cache-warm 200s: the
    # encoded body is reused from the ETag-keyed LRU, and a commit (new
    # ETag) goes back to evaluation.
    _setup(client)
    first = client.publish("tau1", source="db")
    repeat = client.publish("tau1", source="db")
    assert repeat.status == 200
    assert repeat.document == first.document
    stats = client.stats()
    assert stats["net"]["response_cache_hits"] == 1
    assert stats["net"]["publishes"] == 1

    client.commit("db", Delta.insert("course", ("CS555", "Fresh", "CS")))
    fresh = client.publish("tau1", source="db")
    assert "CS555" in fresh.document
    stats = client.stats()
    assert stats["net"]["publishes"] == 2
    assert stats["net"]["response_cache_hits"] == 1


def test_etag_varies_with_output_axes(client):
    _setup(client)
    pretty = client.publish("tau1", source="db", indent=2)
    compact = client.publish("tau1", source="db", output="compact", indent=None)
    assert pretty.etag != compact.etag
    assert compact.document == client.publish(
        "tau1", source="db", output="compact", indent=None, etag=pretty.etag
    ).document


def test_publish_pinned_version_snapshot_isolation(client):
    _setup(client)
    v0 = client.publish("tau1", source="db", version=0)
    client.commit("db", Delta.insert("course", ("CS777", "New", "CS")))
    pinned = client.publish("tau1", source="db", version=0)
    assert pinned.document == v0.document
    assert "CS777" not in pinned.document


def test_subscription_replays_to_publish_oracle(client):
    _setup(client)
    with client.subscribe("tau1", source="db") as sub:
        init = sub.recv()
        assert init["type"] == "init"
        tree = tree_from_wire(init["document"])

        commits = [
            Delta.insert("course", ("CS901", "A", "CS")),
            Delta.insert("prereq", ("CS901", "CS240")),
            Delta.delete("course", ("CS901", "A", "CS")),
        ]
        for index, delta in enumerate(commits, start=1):
            client.commit("db", delta)
            message = sub.recv()
            assert message["type"] == "edits"
            assert message["version"] == index
            tree = edits_of(message).apply(tree)

        # the locally-maintained tree equals a fresh server-side document
        with client.subscribe("tau1", source="db") as check:
            fresh = tree_from_wire(check.recv()["document"])
        assert trees_equal(tree, fresh)


def test_two_subscribers_get_identical_payloads(client):
    _setup(client)
    with client.subscribe("tau1", source="db") as a, client.subscribe(
        "tau1", source="db"
    ) as b:
        a.recv(), b.recv()
        out = client.commit("db", Delta.insert("course", ("CS902", "B", "CS")))
        assert out["delivered"] == 2
        assert a.recv() == b.recv()


def test_namespaces_are_isolated(server):
    east = NetClient(*server.address, namespace="east")
    west = NetClient(*server.address, namespace="west")
    _setup(east)
    west.register_view("tau1")
    west.attach(example_registrar_instance(), name="db")

    east.commit("db", Delta.insert("course", ("CS903", "EastOnly", "CS")))
    assert "CS903" in east.publish("tau1", source="db").document
    assert "CS903" not in west.publish("tau1", source="db").document
    # and a namespace nobody wrote to does not exist
    nobody = NetClient(*server.address, namespace="nowhere")
    with pytest.raises(NetClientError) as caught:
        nobody.views()
    assert caught.value.status == 404


def test_error_statuses(client):
    with pytest.raises(NetClientError) as caught:
        client.publish("ghost", source="db")
    assert caught.value.status in (400, 404)
    _setup(client)
    status, _, _ = client.request(
        "POST", client._ns("sources/db/commit"), {"format": 0}
    )
    assert status == 400
    with pytest.raises(NetClientError) as caught:
        client.register_view("not-in-catalog")
    assert caught.value.status in (400, 404)


def test_stats_and_explain(client):
    _setup(client)
    client.publish("tau1", source="db")
    stats = client.stats()
    assert stats["namespace"] == "test"
    assert stats["net"]["publishes"] >= 1
    explain = client.explain("tau1")
    assert explain["view"] == "tau1"


def test_prune_over_http(client):
    _setup(client)
    for step in range(3):
        client.commit("db", Delta.insert("course", (f"CS91{step}", "T", "CS")))
    result = client.prune("db", keep_last=1)
    assert result["count"] == 3
    assert result["indices"] == [0, 1, 2]


def test_restart_replays_from_wal(tmp_path):
    wal_dir = tmp_path / "wal"
    with NetServerThread("127.0.0.1", 0, wal_dir=wal_dir) as srv:
        client = NetClient(*srv.address, namespace="prod")
        client.register_view("tau1")
        client.attach(example_registrar_instance(), name="db", durable=True)
        client.commit("db", Delta.insert("course", ("CS904", "Durable", "CS")))
        client.commit("db", Delta.insert("prereq", ("CS904", "CS240")))
        before = client.publish("tau1", source="db")
        assert before.version == 2

    with NetServerThread("127.0.0.1", 0, wal_dir=wal_dir) as srv:
        client = NetClient(*srv.address, namespace="prod")
        client.register_view("tau1")  # views are re-registered, sources recovered
        assert [source["name"] for source in client.sources()] == ["db"]
        after = client.publish("tau1", source="db")
        assert after.version == 2
        assert after.document == before.document
        # and the recovered source keeps accepting commits
        out = client.commit("db", Delta.insert("course", ("CS905", "After", "CS")))
        assert out["version"] == 3


def test_subscribe_failure_answers_http_not_dead_socket(client):
    # opening a subscription runs a full publish; if that raises (here: the
    # node budget on a blow-up chain), the server must answer with an HTTP
    # error on the not-yet-upgraded socket and keep serving
    from repro.relational.instance import Instance
    from repro.workloads.registrar import REGISTRAR_SCHEMA

    n = 3000
    blowup = Instance(
        REGISTRAR_SCHEMA,
        {
            "course": [(f"c{i}", f"T{i}", "CS") for i in range(n)],
            "prereq": [(f"c{i}", f"c{i + 1}") for i in range(n - 1)],
        },
    )
    client.register_view("tau1")
    client.attach(blowup, name="chain")
    with pytest.raises(NetClientError) as caught:
        client.subscribe("tau1", source="chain").__enter__()
    assert caught.value.status == 500
    assert "node budget" in str(caught.value)
    assert client.healthz()["ok"] is True


def test_commit_schema_violation_is_a_client_error(client):
    _setup(client)
    with pytest.raises(NetClientError) as caught:
        client.commit("db", Delta.insert("course", ("only-two", "columns")))
    assert caught.value.status == 400
    assert client.healthz()["ok"] is True


def test_non_durable_attach_without_wal_dir(client):
    client.register_view("tau1")
    info = client.attach(example_registrar_instance(), name="db")
    assert info["durable"] is False
    with pytest.raises(NetClientError) as caught:
        client.attach(example_registrar_instance(), name="db2", durable=True)
    assert caught.value.status == 400


def test_client_reuses_one_keepalive_connection(client):
    _setup(client)
    client.publish("tau1", source="db")
    first = client._connection
    assert first is not None
    client.publish("tau1", source="db")
    client.stats()
    assert client._connection is first

    # a stale socket (server restart, idle close) is retried transparently
    # on a fresh connection -- the caller never sees the hiccup
    first.sock.close()
    fresh = client.publish("tau1", source="db")
    assert fresh.status == 200
    assert client._connection is not None
    assert client._connection is not first

    client.close()
    assert client._connection is None
    with client as managed:  # context manager: usable, then dropped
        assert managed.healthz()["ok"] is True
    assert client._connection is None


def test_slow_consumer_is_evicted_not_serviced_forever(server):
    # A subscriber that stops reading must not pin memory or stall commits:
    # it is evicted either when its send buffer passes max_buffered_bytes
    # within a burst, or when it stalls a whole drain window.
    server.server.max_buffered_bytes = 64 * 1024
    server.server.drain_timeout = 0.5
    client = NetClient(*server.address, namespace="slow")
    _setup(client)

    slow = client.subscribe("tau1", source="db")
    slow.recv()  # consume the init document, then never read again
    with client.subscribe("tau1", source="db") as live:
        live.recv()
        # each edit frame carries ~1MB of text: enough to blow past the
        # kernel's socket buffering and back up into the transport buffer
        big = "X" * 1_000_000
        evicted = 0
        for step in range(16):
            client.commit("db", Delta.insert("course", (f"CSBIG{step}", big, "CS")))
            live.recv()  # the healthy subscriber keeps the group flowing
            evicted = client.stats()["net"]["evicted"]
            if evicted:
                break
        assert evicted >= 1

        # the healthy subscriber still gets every subsequent push
        out = client.commit("db", Delta.insert("course", ("CSAFTER", "ok", "CS")))
        assert out["delivered"] == 1
        message = live.recv()
        assert message["type"] == "edits"
        assert message["version"] == out["version"]
    slow._socket.close()


def test_wal_damage_surfaces_through_startup_recovery(tmp_path):
    from repro.serve.net import WalError

    wal_dir = tmp_path / "wal"
    with NetServerThread("127.0.0.1", 0, wal_dir=wal_dir) as srv:
        client = NetClient(*srv.address, namespace="prod")
        client.register_view("tau1")
        client.attach(example_registrar_instance(), name="db", durable=True)
        for step in range(4):
            client.commit("db", Delta.insert("course", (f"CS93{step}", "T", "CS")))

    # flip one mid-log record: damage that is NOT a torn tail must refuse
    # to recover rather than silently truncate history
    segment = sorted((wal_dir / "prod" / "db").glob("wal-*.log"))[0]
    lines = segment.read_bytes().splitlines(keepends=True)
    lines[1] = b'00000000 {"corrupted": true}\n'
    segment.write_bytes(b"".join(lines))

    broken = NetServerThread("127.0.0.1", 0, wal_dir=wal_dir)
    with pytest.raises(WalError):
        broken.start()


# ---------------------------------------------------------------------------
# Output typechecking over the wire (the DTD travels as pure data).
# ---------------------------------------------------------------------------


def _wire_dtds():
    from repro.xmltree.dtd import DTD, Epsilon, alt, concat, opt, star, sym

    text = sym("text")
    permissive = DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": alt(Epsilon(), concat(sym("cno"), sym("title"), sym("prereq"))),
            "prereq": star(sym("course")),
            "cno": opt(text),
            "title": opt(text),
        },
    )
    strict = DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": opt(text),
            "title": opt(text),
        },
    )
    undecided = DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title"), sym("title")),
            "cno": opt(text),
            "title": opt(text),
        },
    )
    return permissive, strict, undecided


def test_register_with_dtd_reports_the_verdict(client):
    permissive, _, _ = _wire_dtds()
    out = client.register_view("tau1", output_dtd=permissive)
    assert out["typecheck"] == {"mode": "static", "verdict": "proved"}
    client.attach(example_registrar_instance(), name="db")
    assert client.publish("tau1", source="db").status == 200


def test_refuted_registration_answers_422_with_replayable_witness(client):
    _, strict, _ = _wire_dtds()
    with pytest.raises(NetClientError) as caught:
        client.register_view("tau1", output_dtd=strict)
    assert caught.value.status == 422
    payload = caught.value.payload
    assert payload["typecheck"]["verdict"] == "refuted"
    assert payload["typecheck"]["violation"]["location"].startswith("/db/course[")

    # the witness decodes and replays the refutation client-side
    from repro.engine.plan import compile_plan
    from repro.relational.wire import instance_from_wire
    from repro.serve.net.app import default_catalog
    from repro.typecheck import find_violation

    witness = instance_from_wire(payload["witness"])
    tree = compile_plan(default_catalog()["tau1"]()).publish(witness)
    replayed = find_violation(tree, strict)
    assert replayed is not None
    assert replayed.location() == payload["typecheck"]["violation"]["location"]

    # the rejection did not squat on the name
    assert client.register_view("tau1")["name"] == "tau1"


def test_runtime_violation_answers_422_with_the_violation(client):
    _, _, undecided = _wire_dtds()
    out = client.register_view("tau3", output_dtd=undecided)
    assert out["typecheck"]["verdict"] == "undecided"
    client.attach(example_registrar_instance(), name="db")
    with pytest.raises(NetClientError) as caught:
        client.publish("tau3", source="db")
    assert caught.value.status == 422
    assert caught.value.payload["view"] == "tau3"
    assert caught.value.payload["violation"]["location"].startswith("/db/course[")


def test_malformed_wire_dtd_is_a_400(client):
    with pytest.raises(NetClientError) as caught:
        client.register_view("tau1", output_dtd={"root": "db", "rules": {"db": {"op": "??"}}})
    assert caught.value.status == 400
    with pytest.raises(NetClientError) as caught:
        client.register_view("tau1", output_dtd=_wire_dtds()[0], typecheck="sometimes")
    assert caught.value.status == 400


def test_wire_dtd_publish_matches_unchecked_bytes(client):
    permissive, _, _ = _wire_dtds()
    client.register_view("checked", view="tau1", output_dtd=permissive)
    client.register_view("plain", view="tau1")
    client.attach(example_registrar_instance(), name="db")
    checked = client.publish("checked", source="db")
    plain = client.publish("plain", source="db")
    assert checked.document == plain.document
