"""Static output typechecking and streaming runtime validation.

Covers the :mod:`repro.typecheck` subsystem end to end: the DFA compilation
of content models (``Regex.to_dfa``), regular-language inclusion with
counterexample words, the three-valued static checker (with *replayable*
refutation witnesses), the O(depth) streaming validator at Proposition-1
depths, and the full serving integration --
``register_view(..., output_dtd=..., typecheck=...)`` rejection, proved
views publishing with zero validation cost, undecided views validating
streamingly with byte-identical output across every backend x output x
maintenance combination.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.analysis import witness_instance
from repro.analysis.composition import compose_path
from repro.core.dependency import DependencyGraph
from repro.engine.plan import compile_plan
from repro.relational.instance import Instance
from repro.serve import ViewRejected, ViewServer
from repro.typecheck import (
    OutputValidationError,
    StreamingValidator,
    Verdict,
    find_violation,
    inclusion_counterexample,
    typecheck_plan,
    typecheck_transducer,
    validate_events,
    validate_tree,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    example_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.dtd import (
    DTD,
    Epsilon,
    Regex,
    alt,
    concat,
    dtd_from_wire,
    dtd_to_wire,
    empty,
    opt,
    plus,
    regex_from_wire,
    regex_to_wire,
    star,
    sym,
)
from repro.xmltree.events import tree_to_events

TEXT = sym("text")


def tau1_dtd() -> DTD:
    """A DTD every tau1 output conforms to (course content may be empty:
    the engine's stop condition prunes repeated configurations)."""
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": alt(
                Epsilon(), concat(sym("cno"), sym("title"), sym("prereq"))
            ),
            "prereq": star(sym("course")),
            "cno": opt(TEXT),
            "title": opt(TEXT),
        },
    )


def tau1_strict_dtd() -> DTD:
    """Requires childless courses -- refuted by any CS course."""
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": opt(TEXT),
            "title": opt(TEXT),
        },
    )


def tau3_exact_dtd() -> DTD:
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": TEXT,
            "title": TEXT,
        },
    )


def tau3_undecided_dtd() -> DTD:
    """tau3 is FO (``NOT EXISTS``): path composition is impossible, so the
    checker cannot build witnesses -- and the empty source conforms."""
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title"), sym("title")),
            "cno": opt(TEXT),
            "title": opt(TEXT),
        },
    )


def fo_courses_view():
    """A flat course list whose *child* queries are FO.

    Semantically every course element emits exactly one ``cno`` and one
    ``title`` (the register holds one tuple), but FO rule queries defeat
    both the exactly-one analysis and witness composition -- the canonical
    UNDECIDED case of Proposition 2 whose real outputs all conform.
    """
    from repro.engine.builder import TransducerBuilder
    from repro.logic.cq import ConjunctiveQuery, RelationAtom
    from repro.logic.fo import Exists, FormulaQuery, Rel
    from repro.logic.terms import Variable

    cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
    c, t = Variable("c"), Variable("t")
    psi = FormulaQuery(
        (cno, title), Exists((dept,), Rel("course", (cno, title, dept)))
    )
    fo_cno = FormulaQuery((c,), Exists((t,), Rel("Reg_course", (c, t))))
    fo_title = FormulaQuery((t,), Exists((c,), Rel("Reg_course", (c, t))))
    text_cno = ConjunctiveQuery((c,), (RelationAtom("Reg_cno", (c,)),))
    text_title = ConjunctiveQuery((t,), (RelationAtom("Reg_title", (t,)),))

    builder = TransducerBuilder("fo-courses", root="db", start="q0")
    builder.start().emit("q", "course", psi)
    builder.state("q").on("course").emit("q", "cno", fo_cno).emit(
        "q", "title", fo_title
    )
    builder.state("q").on("cno").emit_text(text_cno)
    builder.state("q").on("title").emit_text(text_title)
    return builder.build()


def fo_courses_dtd() -> DTD:
    return DTD(
        "db",
        {
            "db": star(sym("course")),
            "course": concat(sym("cno"), sym("title")),
            "cno": opt(TEXT),
            "title": opt(TEXT),
        },
    )


def chain_instance(length: int) -> Instance:
    """A linear prerequisite chain c0 -> c1 -> ... (only c0 is a CS course),
    so tau1 publishes one spine of depth ~2*length."""
    courses = [
        (f"c{i}", f"Course {i}", "CS" if i == 0 else "EE") for i in range(length)
    ]
    prereqs = [(f"c{i}", f"c{i + 1}") for i in range(length - 1)]
    return Instance(REGISTRAR_SCHEMA, {"course": courses, "prereq": prereqs})


# ---------------------------------------------------------------------------
# Regex.to_dfa (satellite: DFA compilation replacing NFA simulation).
# ---------------------------------------------------------------------------


def _random_regex(rng: random.Random, depth: int) -> Regex:
    if depth == 0:
        return rng.choice([Epsilon(), sym("a"), sym("b"), sym("c")])
    kind = rng.randrange(4)
    if kind == 0:
        return concat(_random_regex(rng, depth - 1), _random_regex(rng, depth - 1))
    if kind == 1:
        return alt(_random_regex(rng, depth - 1), _random_regex(rng, depth - 1))
    if kind == 2:
        return star(_random_regex(rng, depth - 1))
    return _random_regex(rng, depth - 1)


def _nfa_accepts(regex: Regex, word: tuple[str, ...]) -> bool:
    return regex.to_nfa().accepts(word)


class TestDfa:
    def test_dfa_equals_nfa_on_random_regexes(self):
        rng = random.Random(7)
        for _ in range(150):
            regex = _random_regex(rng, 3)
            for _ in range(20):
                word = tuple(rng.choice("abc") for _ in range(rng.randrange(6)))
                assert regex.to_dfa().accepts(word) == _nfa_accepts(regex, word), (
                    regex,
                    word,
                )

    def test_matches_uses_the_dfa(self):
        model = concat(sym("cno"), sym("title"), star(sym("prereq")))
        assert model.matches(("cno", "title"))
        assert model.matches(("cno", "title", "prereq", "prereq"))
        assert not model.matches(("title", "cno"))

    def test_to_dfa_is_cached_per_structural_identity(self):
        one = concat(sym("a"), star(sym("b")))
        two = concat(sym("a"), star(sym("b")))  # equal, distinct object
        assert one.to_dfa() is two.to_dfa()

    def test_dfa_is_minimised(self):
        # (a|a) and a must compile to the same-size automaton...
        assert alt(sym("a"), sym("a")).to_dfa().states == sym("a").to_dfa().states
        # ...and a* needs exactly one live state.
        assert star(sym("a")).to_dfa().states == 1

    def test_accepts_sets_walks_candidate_alphabets(self):
        model = concat(sym("a"), alt(sym("b"), sym("c")))
        assert model.to_dfa().accepts_sets([{"a"}, {"b", "c"}])
        assert not model.to_dfa().accepts_sets([{"a"}, {"d"}])

    def test_empty_word_regex(self):
        dfa = empty().to_dfa()
        assert dfa.accepts(())
        assert not dfa.accepts(("a",))


class TestInclusion:
    def test_included_languages_have_no_counterexample(self):
        assert inclusion_counterexample(sym("a"), star(sym("a"))) is None
        assert inclusion_counterexample(empty(), star(sym("a"))) is None
        assert (
            inclusion_counterexample(
                concat(sym("a"), star(sym("b"))),
                concat(opt(sym("a")), star(alt(sym("b"), sym("c")))),
            )
            is None
        )

    def test_counterexample_is_a_shortest_escaping_word(self):
        assert inclusion_counterexample(star(sym("a")), plus(sym("a"))) == ()
        assert inclusion_counterexample(concat(sym("a"), sym("b")), star(sym("a"))) == (
            "a",
            "b",
        )
        word = inclusion_counterexample(star(sym("a")), concat(sym("a"), sym("a")))
        assert word is not None and len(word) <= 1

    def test_escape_through_foreign_symbol(self):
        assert inclusion_counterexample(sym("z"), star(sym("a"))) == ("z",)


# ---------------------------------------------------------------------------
# Wire codec (the DTD travels as pure data).
# ---------------------------------------------------------------------------


class TestWire:
    def test_regex_round_trip(self):
        model = alt(Epsilon(), concat(sym("a"), star(alt(sym("b"), sym("c")))))
        assert regex_from_wire(regex_to_wire(model)) == model

    def test_dtd_round_trip_is_json_plain(self):
        import json

        dtd = tau1_dtd()
        wire = dtd_to_wire(dtd)
        json.dumps(wire)  # nothing but plain data crosses the wire
        back = dtd_from_wire(wire)
        assert back.root == dtd.root
        assert set(back.rules) == set(dtd.rules)
        for tag, model in dtd.rules.items():
            assert back.rules[tag] == model

    def test_malformed_wire_raises(self):
        with pytest.raises(ValueError):
            regex_from_wire({"op": "no-such-op"})
        with pytest.raises(ValueError):
            dtd_from_wire({"rules": {}})  # missing root


# ---------------------------------------------------------------------------
# witness_instance (satellite: the emptiness machinery's public witness).
# ---------------------------------------------------------------------------


class TestWitnessInstance:
    def test_builds_a_firing_source_for_a_composed_path(self):
        transducer = tau1_prerequisite_hierarchy()
        graph = DependencyGraph(transducer)
        path = next(
            iter(
                graph.simple_paths_from_root(
                    target_predicate=lambda node: node == ("q", "prereq"),
                    max_paths=100,
                )
            )
        )
        composed = compose_path(transducer, path)
        witness = witness_instance(transducer, composed)
        assert witness is not None
        assert composed.evaluate(witness)

    def test_prefixes_keep_two_witnesses_disjoint(self):
        transducer = tau1_prerequisite_hierarchy()
        graph = DependencyGraph(transducer)
        path = next(
            iter(
                graph.simple_paths_from_root(
                    target_predicate=lambda node: node == ("q", "course"),
                    max_paths=10,
                )
            )
        )
        composed = compose_path(transducer, path)
        first = witness_instance(transducer, composed, prefix="_x")
        second = witness_instance(transducer, composed, prefix="_y")
        assert first is not None and second is not None
        assert set(first["course"]).isdisjoint(set(second["course"]))


# ---------------------------------------------------------------------------
# The static checker.
# ---------------------------------------------------------------------------


class TestStaticChecker:
    def test_tau1_proved_against_its_dtd(self):
        result = typecheck_transducer(tau1_prerequisite_hierarchy(), tau1_dtd())
        assert result.verdict is Verdict.PROVED
        assert result.proved and not result.refuted
        assert result.checked_pairs >= 4
        assert "proved" in result.describe()

    def test_tau1_refuted_with_replayable_witness(self):
        transducer = tau1_prerequisite_hierarchy()
        result = typecheck_transducer(transducer, tau1_strict_dtd())
        assert result.verdict is Verdict.REFUTED
        assert result.witness is not None and result.violation is not None
        # The witness replays: publishing it produces the recorded violation.
        tree = compile_plan(transducer).publish(result.witness)
        replayed = find_violation(tree, tau1_strict_dtd())
        assert replayed is not None
        assert replayed.location() == result.violation.location()

    def test_tau2_virtual_recursion_proved(self):
        # Virtual recursion through ``l`` falls back to the frontier star;
        # the abstraction still proves the flattened closure shape.
        dtd = DTD(
            "db",
            {
                "db": star(sym("course")),
                "course": concat(sym("cno"), sym("title"), sym("prereq")),
                "prereq": star(sym("cno")),
                "cno": opt(TEXT),
                "title": opt(TEXT),
            },
        )
        result = typecheck_transducer(tau2_prerequisite_closure(), dtd)
        assert result.verdict is Verdict.PROVED

    def test_tau3_exact_dtd_proved(self):
        result = typecheck_transducer(tau3_courses_without_db_prereq(), tau3_exact_dtd())
        assert result.verdict is Verdict.PROVED

    def test_tau3_fo_undecided_with_reasons(self):
        # FO rule queries defeat path composition (Proposition 2), and the
        # empty source conforms -- neither proof nor refutation.
        result = typecheck_transducer(
            tau3_courses_without_db_prereq(), tau3_undecided_dtd()
        )
        assert result.verdict is Verdict.UNDECIDED
        assert result.reasons
        assert result.witness is None and result.violation is None
        assert result.as_dict()["verdict"] == "undecided"

    def test_root_tag_mismatch_refutes_on_the_empty_source(self):
        dtd = DTD("catalog", {"catalog": star(sym("course"))})
        result = typecheck_transducer(tau1_prerequisite_hierarchy(), dtd)
        assert result.verdict is Verdict.REFUTED
        assert result.witness is not None
        assert result.witness.total_size() == 0
        assert "root" in result.violation.reason

    def test_typecheck_plan_matches_transducer_form(self):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        assert typecheck_plan(plan, tau1_dtd()).verdict is Verdict.PROVED
        assert typecheck_plan(plan, tau1_strict_dtd()).verdict is Verdict.REFUTED


# ---------------------------------------------------------------------------
# The streaming validator.
# ---------------------------------------------------------------------------


class TestStreamingValidator:
    def test_accepts_a_conforming_publish(self):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        instance = example_registrar_instance()
        events = plan.publish_events(instance)
        count = StreamingValidator(tau1_dtd()).validate(events)
        assert count == len(list(plan.publish_events(instance)))

    def test_rejects_at_the_earliest_possible_event(self):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        with pytest.raises(OutputValidationError) as info:
            StreamingValidator(tau1_strict_dtd()).validate(
                plan.publish_events(example_registrar_instance())
            )
        violation = info.value.violation
        assert violation.tag == "prereq"
        assert violation.reason.startswith("child 2 of 'course'")
        assert violation.location().startswith("/db/course[")

    def test_validate_events_is_a_pass_through(self):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        instance = example_registrar_instance()
        checked = list(validate_events(plan.publish_events(instance), tau1_dtd()))
        assert checked == list(plan.publish_events(instance))

    def test_validate_events_on_valid_fires_after_the_last_event(self):
        plan = compile_plan(tau1_prerequisite_hierarchy())
        fired = []
        stream = validate_events(
            plan.publish_events(example_registrar_instance()),
            tau1_dtd(),
            on_valid=lambda: fired.append(True),
        )
        next(stream)
        assert not fired
        for _ in stream:
            pass
        assert fired == [True]

    def test_violation_as_dict_is_structured(self):
        tree = compile_plan(tau1_prerequisite_hierarchy()).publish(
            example_registrar_instance()
        )
        violation = find_violation(tree, tau1_strict_dtd())
        data = violation.as_dict()
        assert data["location"] == violation.location()
        assert data["expected"]  # the offending content model rides along
        assert isinstance(data["path"], list) and isinstance(data["tags"], list)

    def test_incomplete_content_detected_at_close(self):
        dtd = DTD("db", {"db": plus(sym("course"))})
        with pytest.raises(OutputValidationError) as info:
            validate_tree(
                compile_plan(tau1_prerequisite_hierarchy()).publish(
                    Instance(REGISTRAR_SCHEMA, {"course": [], "prereq": []})
                ),
                dtd,
            )
        assert "incomplete" in info.value.violation.reason

    def test_deep_spine_is_stack_safe(self):
        # Proposition-1 depths: a linear prerequisite chain publishes one
        # spine far past the recursion limit; the validator must stay
        # O(depth) iterative, never recursive.
        length = max(sys.getrecursionlimit(), 1200) + 200
        plan = compile_plan(tau1_prerequisite_hierarchy())
        instance = chain_instance(length)
        events = plan.publish_events(instance, 20 * length)
        count = StreamingValidator(tau1_dtd()).validate(events)
        assert count > 4 * length  # the whole spine streamed through
        # and the tree form folds through the same iterative path
        tree = plan.publish(instance, 20 * length)
        assert validate_tree(tree, tau1_dtd()) == count

    def test_deep_violation_is_located(self):
        length = max(sys.getrecursionlimit(), 1200) + 200
        plan = compile_plan(tau1_prerequisite_hierarchy())
        tree = plan.publish(chain_instance(length), 20 * length)
        violation = find_violation(tree, tau1_strict_dtd())
        assert violation is not None
        assert violation.location().startswith("/db/course[0]")


# ---------------------------------------------------------------------------
# Serving integration.
# ---------------------------------------------------------------------------


class TestServerIntegration:
    def test_refuted_view_rejected_at_registration(self):
        server = ViewServer()
        with pytest.raises(ViewRejected) as info:
            server.register_view(
                "bad", tau1_prerequisite_hierarchy(), output_dtd=tau1_strict_dtd()
            )
        assert info.value.result.refuted
        assert info.value.result.witness is not None
        # the name is free again: a corrected registration may reuse it
        assert all(view.name != "bad" for view in server.views)
        server.register_view(
            "bad", tau1_prerequisite_hierarchy(), output_dtd=tau1_dtd()
        )

    def test_rejection_witness_replays_through_the_server(self):
        server = ViewServer()
        with pytest.raises(ViewRejected) as info:
            server.register_view(
                "bad", tau1_prerequisite_hierarchy(), output_dtd=tau1_strict_dtd()
            )
        witness = info.value.result.witness
        server.register_view("same", tau1_prerequisite_hierarchy())
        tree = server.publish("same", source=witness)
        assert find_violation(tree, tau1_strict_dtd()) is not None

    def test_proved_view_publishes_with_zero_validation(self):
        server = ViewServer()
        view = server.register_view(
            "t1", tau1_prerequisite_hierarchy(), output_dtd=tau1_dtd()
        )
        assert view.typecheck_result().proved
        server.attach(example_registrar_instance(), name="db")
        server.publish("t1", output="bytes")
        server.publish("t1", output="tree")
        assert view.validated == 0 and view.violations == 0

    def test_undecided_view_validates_and_memoises(self):
        server = ViewServer()
        view = server.register_view(
            "fo",
            fo_courses_view(),
            output_dtd=fo_courses_dtd(),
        )
        assert view.typecheck_result().verdict is Verdict.UNDECIDED
        server.attach(example_registrar_instance(), name="db")
        first = server.publish("fo", output="bytes")
        second = server.publish("fo", output="bytes")
        assert first == second
        assert view.validated == 1  # one pass, then the per-version memo

    def test_runtime_violation_is_a_structured_error(self):
        server = ViewServer()
        view = server.register_view(
            "t3", tau3_courses_without_db_prereq(), output_dtd=tau3_undecided_dtd()
        )
        server.attach(example_registrar_instance(), name="db")
        with pytest.raises(OutputValidationError) as info:
            server.publish("t3", output="bytes")
        assert info.value.view == "t3"
        assert info.value.violation.location().startswith("/db/course[")
        assert view.violations == 1

    def test_typecheck_runtime_skips_the_static_check(self):
        server = ViewServer()
        view = server.register_view(
            "t3",
            tau3_courses_without_db_prereq(),
            output_dtd=tau3_exact_dtd(),
            typecheck="runtime",
        )
        assert view.typecheck_result() is None
        server.attach(example_registrar_instance(), name="db")
        server.publish("t3", output="bytes")
        assert view.validated == 1

    def test_typecheck_off_records_but_never_enforces(self):
        server = ViewServer()
        view = server.register_view(
            "t3",
            tau3_courses_without_db_prereq(),
            output_dtd=tau3_undecided_dtd(),
            typecheck="off",
        )
        server.attach(example_registrar_instance(), name="db")
        server.publish("t3", output="bytes")  # would violate, but mode is off
        assert view.validated == 0 and view.violations == 0

    def test_typecheck_axis_is_validated(self):
        server = ViewServer()
        with pytest.raises(Exception, match="typecheck"):
            server.register_view(
                "x",
                tau1_prerequisite_hierarchy(),
                output_dtd=tau1_dtd(),
                typecheck="sometimes",
            )
        with pytest.raises(Exception, match="output_dtd"):
            server.register_view(
                "x", tau1_prerequisite_hierarchy(), typecheck="runtime"
            )

    def test_events_output_validates_single_pass(self):
        server = ViewServer()
        view = server.register_view(
            "t3",
            tau3_courses_without_db_prereq(),
            output_dtd=tau3_exact_dtd(),
            typecheck="runtime",
        )
        server.attach(example_registrar_instance(), name="db")
        events = list(server.publish("t3", output="events"))
        assert view.validated == 1
        plain = ViewServer()
        plain.register_view("t3", tau3_courses_without_db_prereq())
        plain.attach(example_registrar_instance(), name="db")
        assert events == list(plain.publish("t3", output="events"))

    def test_events_violation_surfaces_while_streaming(self):
        server = ViewServer()
        server.register_view(
            "t3", tau3_courses_without_db_prereq(), output_dtd=tau3_undecided_dtd()
        )
        server.attach(example_registrar_instance(), name="db")
        with pytest.raises(OutputValidationError):
            list(server.publish("t3", output="events"))

    def test_stats_and_explain_surface_the_typecheck(self):
        server = ViewServer()
        server.register_view(
            "t1", tau1_prerequisite_hierarchy(), output_dtd=tau1_dtd()
        )
        server.register_view("plain", tau3_courses_without_db_prereq())
        stats = server.stats()
        by_name = {view.name: view for view in stats.views}
        assert by_name["t1"].typecheck["mode"] == "static"
        assert by_name["t1"].typecheck["verdicts"] == {"": "proved"}
        assert by_name["plain"].typecheck is None
        assert "typecheck [static]" in stats.describe()
        report = server.explain("t1")
        assert report.typecheck["result"]["verdict"] == "proved"
        assert "typecheck [static]: proved" in report.describe()

    def test_validation_memo_survives_across_outputs_but_not_versions(self):
        server = ViewServer()
        view = server.register_view(
            "t3",
            tau3_courses_without_db_prereq(),
            output_dtd=tau3_exact_dtd(),
            typecheck="runtime",
        )
        handle = server.attach(example_registrar_instance(), name="db")
        server.publish("t3", output="bytes")
        server.publish("t3", output="compact")
        server.publish("t3", output="tree")
        assert view.validated == 1
        from repro.relational.delta import Delta

        handle.commit(Delta.insert("course", ("CS999", "New", "CS")))
        server.publish("t3", output="bytes")
        assert view.validated == 2  # the new version validates once

    def test_maintained_tree_output_is_validated(self):
        server = ViewServer()
        view = server.register_view(
            "t3",
            tau3_courses_without_db_prereq(),
            output_dtd=tau3_exact_dtd(),
            typecheck="runtime",
        )
        server.attach(example_registrar_instance(), name="db")
        server.publish("t3", output="tree", maintenance="incremental")
        server.publish("t3", output="tree", maintenance="incremental")
        assert view.validated == 1


class TestByteIdentity:
    """Validated output must equal unvalidated output everywhere."""

    @pytest.mark.parametrize("backend", ["row", "columnar"])
    @pytest.mark.parametrize("output", ["tree", "events", "bytes", "compact"])
    @pytest.mark.parametrize("maintenance", ["full", "incremental"])
    def test_all_combinations(self, backend, output, maintenance):
        if output == "events" and maintenance == "incremental":
            pytest.skip("maintained chains render events from the tree")

        def build(validating: bool) -> ViewServer:
            server = ViewServer()
            if validating:
                server.register_view(
                    "v",
                    tau3_courses_without_db_prereq(),
                    output_dtd=tau3_exact_dtd(),
                    typecheck="runtime",
                )
            else:
                server.register_view("v", tau3_courses_without_db_prereq())
            server.attach(example_registrar_instance(), name="db")
            return server

        kwargs = dict(output=output, backend=backend, maintenance=maintenance)
        checked = build(True).publish("v", **kwargs)
        plain = build(False).publish("v", **kwargs)
        if output == "events":
            assert list(checked) == list(plain)
        else:
            assert checked == plain
