"""Unit tests for first-order and fixpoint queries."""

from __future__ import annotations

import pytest

from repro.logic import (
    And,
    Eq,
    Exists,
    FalseFormula,
    Forall,
    FormulaQuery,
    Not,
    Or,
    Rel,
    TrueFormula,
    parse_formula,
    parse_formula_query,
)
from repro.logic.base import QueryLogic
from repro.logic.fo import Neq, conjunction, disjunction
from repro.logic.ifp import (
    reachability_query,
    same_generation_query,
    transitive_closure_query,
)
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def graph():
    schema = RelationalSchema.from_arities({"E": 2, "P": 1})
    return Instance(
        schema,
        {"E": [("a", "b"), ("b", "c"), ("c", "d")], "P": [("a",), ("c",)]},
    )


class TestFormulaEvaluation:
    def test_atom(self, graph):
        query = FormulaQuery((x, y), Rel("E", (x, y)))
        assert query.evaluate(graph) == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_conjunction_join(self, graph):
        query = FormulaQuery((x,), And((Rel("E", (x, y)), Rel("P", (x,)))))
        assert query.evaluate(graph) == {("a",), ("c",)}

    def test_negation(self, graph):
        query = FormulaQuery((x,), And((Rel("P", (x,)), Not(Rel("E", (x, Constant("b")))))))
        assert query.evaluate(graph) == {("c",)}

    def test_disjunction(self, graph):
        query = FormulaQuery((x,), Or((Rel("P", (x,)), Rel("E", (Constant("b"), x)))))
        assert query.evaluate(graph) == {("a",), ("c",)}

    def test_existential(self, graph):
        query = FormulaQuery((x,), Exists((y,), And((Rel("E", (x, y)), Rel("P", (y,))))))
        assert query.evaluate(graph) == {("b",)}

    def test_universal(self, graph):
        # Every outgoing edge of x leads to a node in P.
        query = FormulaQuery(
            (x,),
            And((Rel("E", (x, y)), Forall((z,), Or((Not(Rel("E", (x, z))), Rel("P", (z,))))))),
        )
        results = {row[0] for row in query.evaluate(graph)}
        assert results == {"b"}

    def test_equality_and_inequality(self, graph):
        query = FormulaQuery((x, y), And((Rel("E", (x, y)), Neq(x, Constant("a")))))
        assert query.evaluate(graph) == {("b", "c"), ("c", "d")}

    def test_true_false(self, graph):
        assert FormulaQuery((), TrueFormula()).holds(graph)
        assert not FormulaQuery((), FalseFormula()).holds(graph)

    def test_boolean_query(self, graph):
        query = FormulaQuery((), Exists((x,), And((Rel("P", (x,)), Rel("E", (x, Constant("b")))))))
        assert query.holds(graph)

    def test_parse_formula_query(self, graph):
        query = parse_formula_query(["v"], "exists w. E(v, w) & ~P(w)")
        assert query.evaluate(graph) == {("a",), ("c",)}

    def test_logic_detection(self):
        assert FormulaQuery((x,), Rel("E", (x, x))).logic is QueryLogic.FO
        assert transitive_closure_query("E").logic is QueryLogic.IFP

    def test_smart_connectives(self):
        assert isinstance(conjunction([]), TrueFormula)
        assert isinstance(disjunction([]), FalseFormula)
        assert conjunction([Rel("E", (x, y))]) == Rel("E", (x, y))
        assert isinstance(conjunction([FalseFormula(), Rel("E", (x, y))]), FalseFormula)

    def test_free_variables(self):
        formula = Exists((y,), And((Rel("E", (x, y)), Eq(y, z))))
        assert formula.free_variables() == {x, z}

    def test_substitute(self, graph):
        formula = Rel("E", (x, y)).substitute({y: Constant("b")})
        query = FormulaQuery((x,), formula)
        assert query.evaluate(graph) == {("a",)}

    def test_transform_atoms(self):
        formula = And((Rel("E", (x, y)), Rel("P", (x,))))
        renamed = formula.transform_atoms(lambda a: Rel(a.relation.lower() + "2", a.terms))
        assert renamed.relation_names() == {"e2", "p2"}


class TestFixpointQueries:
    def test_transitive_closure(self, graph):
        closure = transitive_closure_query("E").evaluate(graph)
        assert ("a", "d") in closure
        assert ("d", "a") not in closure
        assert len(closure) == 6

    def test_reachability(self, graph):
        assert reachability_query("E", Constant("a"), Constant("d")).holds(graph)
        assert not reachability_query("E", Constant("d"), Constant("a")).holds(graph)
        assert reachability_query("E", Constant("a"), Constant("a")).holds(graph)

    def test_same_generation(self):
        schema = RelationalSchema.from_arities({"child": 2})
        instance = Instance(
            schema,
            {"child": [("root", "l"), ("root", "r"), ("l", "ll"), ("r", "rr")]},
        )
        result = same_generation_query("child").evaluate(instance)
        assert ("l", "r") in result
        assert ("ll", "rr") in result
        assert ("l", "rr") not in result

    def test_fixpoint_on_cycle_terminates(self):
        schema = RelationalSchema.from_arities({"E": 2})
        instance = Instance(schema, {"E": [("a", "b"), ("b", "a")]})
        closure = transitive_closure_query("E").evaluate(instance)
        assert closure == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_fixpoint_arity_mismatch_rejected(self):
        from repro.logic.ifp import Fixpoint

        with pytest.raises(ValueError):
            Fixpoint("S", (x, y), Rel("E", (x, y)), (x,))


class TestFormulaParser:
    def test_quantifier_scoping(self):
        formula = parse_formula("forall a b. R(a, b) | exists c. S(c)")
        assert formula.free_variables() == frozenset()

    def test_parse_true_false(self):
        assert isinstance(parse_formula("true"), TrueFormula)
        assert isinstance(parse_formula("false"), FalseFormula)

    def test_operator_precedence(self):
        formula = parse_formula("R(x) & S(x) | T(x)")
        assert isinstance(formula, Or)

    def test_parse_negation_and_parens(self):
        formula = parse_formula("~(R(x) & S(x))")
        assert isinstance(formula, Not)

    def test_parse_error(self):
        from repro.logic.parser import ParseError

        with pytest.raises(ParseError):
            parse_formula("exists . R(x)")
