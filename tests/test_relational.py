"""Unit tests for the relational substrate."""

from __future__ import annotations

import pytest

from repro.relational import (
    ArityError,
    Instance,
    Relation,
    RelationSchema,
    RelationalSchema,
    SchemaError,
    UnknownRelationError,
    order_key,
    sort_tuples,
    sort_values,
)
from repro.relational.algebra import (
    BaseRelation,
    Difference,
    Product,
    Project,
    Select,
    Union,
    difference,
    intersection,
    natural_join,
    product,
    projection,
    select_eq,
    selection,
    union,
)
from repro.relational.domain import relation_to_text, value_to_text


class TestDomainOrder:
    def test_order_is_total_on_mixed_values(self):
        values = ["b", 2, "a", 1, None, 3.5, (1, 2)]
        ordered = sort_values(values)
        assert len(ordered) == len(values)
        keys = [order_key(v) for v in ordered]
        assert keys == sorted(keys)

    def test_numbers_before_strings(self):
        assert sort_values(["x", 10]) == [10, "x"]

    def test_tuple_sort_is_lexicographic(self):
        rows = [("b", 1), ("a", 2), ("a", 1)]
        assert sort_tuples(rows) == [("a", 1), ("a", 2), ("b", 1)]

    def test_order_key_deterministic(self):
        assert order_key("abc") == order_key("abc")
        assert order_key(1) != order_key(2)

    def test_value_to_text(self):
        assert value_to_text("x") == "x"
        assert value_to_text(3) == "3"
        assert value_to_text(True) == "true"

    def test_relation_to_text_singleton(self):
        assert relation_to_text({("cs101",)}) == "cs101"

    def test_relation_to_text_multiple_rows_sorted(self):
        text = relation_to_text({("b", 2), ("a", 1)})
        assert text == "a, 1; b, 2"

    def test_relation_to_text_empty(self):
        assert relation_to_text(set()) == ""


class TestSchema:
    def test_relation_schema_attributes_must_match_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", 2, ("a",))

    def test_relation_schema_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", 2, ("a", "a"))

    def test_position_of(self):
        schema = RelationSchema("course", 3, ("cno", "title", "dept"))
        assert schema.position_of("title") == 1
        with pytest.raises(SchemaError):
            schema.position_of("nope")

    def test_relational_schema_lookup(self, simple_schema):
        assert simple_schema.arity("course") == 3
        assert "prereq" in simple_schema
        with pytest.raises(UnknownRelationError):
            simple_schema["nope"]

    def test_from_arities(self):
        schema = RelationalSchema.from_arities({"R": 2, "S": 1})
        assert schema.arity("R") == 2
        assert set(schema.names()) == {"R", "S"}

    def test_extended_schema(self, simple_schema):
        extended = simple_schema.extended([RelationSchema("Reg", 2)])
        assert "Reg" in extended
        assert "course" in extended

    def test_conflicting_redeclaration_rejected(self):
        schema = RelationalSchema([RelationSchema("R", 2)])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", 3))


class TestRelationAndInstance:
    def test_relation_rejects_wrong_arity(self):
        with pytest.raises(ArityError):
            Relation("R", 2, [("a",)])

    def test_relation_set_semantics(self):
        relation = Relation("R", 1, [("a",), ("a",), ("b",)])
        assert len(relation) == 2

    def test_instance_unknown_relation(self, simple_schema):
        with pytest.raises(UnknownRelationError):
            Instance(simple_schema, {"nope": []})

    def test_instance_active_domain(self, simple_schema):
        instance = Instance(simple_schema, {"E": [("a", "b"), ("b", "c")]})
        assert instance.active_domain() == frozenset({"a", "b", "c"})

    def test_instance_extended_with_register(self, simple_schema):
        instance = Instance(simple_schema, {"E": [("a", "b")]})
        extended = instance.extended({"Reg": [("a",)]}, [RelationSchema("Reg", 1)])
        assert extended["Reg"].tuples == frozenset({("a",)})
        assert extended["E"].tuples == instance["E"].tuples
        # The original instance is unchanged.
        assert "Reg" not in instance.schema

    def test_instance_union(self, simple_schema):
        first = Instance(simple_schema, {"E": [("a", "b")]})
        second = Instance(simple_schema, {"E": [("b", "c")]})
        merged = first.union(second)
        assert merged["E"].tuples == frozenset({("a", "b"), ("b", "c")})

    def test_instance_equality_and_hash(self, simple_schema):
        first = Instance(simple_schema, {"E": [("a", "b")]})
        second = Instance(simple_schema, {"E": [("a", "b")]})
        assert first == second
        assert hash(first) == hash(second)

    def test_from_dict_infers_schema(self):
        instance = Instance.from_dict({"R": [(1, 2)]})
        assert instance.schema.arity("R") == 2

    def test_from_dict_empty_relation_needs_schema(self):
        with pytest.raises(SchemaError):
            Instance.from_dict({"R": []})

    def test_updated_replaces_relation(self, simple_schema):
        instance = Instance(simple_schema, {"E": [("a", "b")]})
        updated = instance.updated("E", [("x", "y")])
        assert updated["E"].tuples == frozenset({("x", "y")})
        assert instance["E"].tuples == frozenset({("a", "b")})

    def test_total_size(self, simple_schema):
        instance = Instance(simple_schema, {"E": [("a", "b")], "prereq": [("c1", "c2")]})
        assert instance.total_size() == 2


class TestAlgebra:
    @pytest.fixture
    def relation(self):
        return Relation("R", 2, [("a", 1), ("b", 2), ("a", 3)])

    def test_selection_and_projection(self, relation):
        selected = select_eq(relation, 0, "a")
        assert len(selected) == 2
        projected = projection(selected, [1])
        assert projected.tuples == frozenset({(1,), (3,)})

    def test_selection_predicate(self, relation):
        result = selection(relation, lambda row: row[1] > 1)
        assert len(result) == 2

    def test_product_and_join(self, relation):
        other = Relation("S", 1, [(1,), (2,)])
        assert len(product(relation, other)) == 6
        joined = natural_join(relation, other, [(1, 0)])
        assert joined.tuples == frozenset({("a", 1, 1), ("b", 2, 2)})

    def test_union_difference_intersection(self, relation):
        other = Relation("S", 2, [("a", 1), ("z", 9)])
        assert len(union(relation, other)) == 4
        assert difference(relation, other).tuples == frozenset({("b", 2), ("a", 3)})
        assert intersection(relation, other).tuples == frozenset({("a", 1)})

    def test_union_arity_mismatch(self, relation):
        with pytest.raises(ArityError):
            union(relation, Relation("S", 1, [(1,)]))

    def test_expression_tree_evaluation(self, simple_schema):
        instance = Instance(
            simple_schema, {"course": [("c1", "A", "CS"), ("c2", "B", "Math")]}
        )
        expression = Project(Select(BaseRelation("course"), 2, "CS"), (0,))
        assert expression.evaluate(instance).tuples == frozenset({("c1",)})

    def test_expression_union_difference(self, simple_schema):
        instance = Instance(simple_schema, {"E": [("a", "b"), ("b", "c")]})
        expression = Difference(BaseRelation("E"), Union(BaseRelation("E"), BaseRelation("E")))
        assert expression.evaluate(instance).is_empty()

    def test_expression_walk(self):
        expression = Product(BaseRelation("R"), BaseRelation("S"))
        names = [e.name for e in expression.walk() if isinstance(e, BaseRelation)]
        assert names == ["R", "S"]
