"""Shared fixtures: the registrar database, the Figure 1 views and small graphs."""

from __future__ import annotations

import pytest

from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.workloads.random_instances import chain_instance, random_graph_instance
from repro.workloads.registrar import (
    example_registrar_instance,
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)


@pytest.fixture(scope="session")
def registrar_instance() -> Instance:
    """The hand-written registrar database of Example 1.1."""
    return example_registrar_instance()


@pytest.fixture(scope="session")
def larger_registrar_instance() -> Instance:
    """A generated registrar database with a deeper prerequisite hierarchy."""
    return generate_registrar_instance(40, max_prereqs=2, seed=7)


@pytest.fixture(scope="session")
def tau1():
    """The recursive prerequisite-hierarchy view (Example 3.1)."""
    return tau1_prerequisite_hierarchy()


@pytest.fixture(scope="session")
def tau2():
    """The virtual-node prerequisite-closure view (Example 3.2)."""
    return tau2_prerequisite_closure()


@pytest.fixture(scope="session")
def tau3():
    """The depth-two FO view of Figure 1(c)."""
    return tau3_courses_without_db_prereq()


@pytest.fixture(scope="session")
def graph_instance() -> Instance:
    """A small random graph over the edge relation ``E``."""
    return random_graph_instance(8, 14, seed=3)


@pytest.fixture(scope="session")
def path_instance() -> Instance:
    """A simple path graph ``n0 -> n1 -> ... -> n5``."""
    return chain_instance(5)


@pytest.fixture(scope="session")
def simple_schema() -> RelationalSchema:
    """A small schema used across unit tests."""
    return RelationalSchema.from_attributes(
        {"course": ("cno", "title", "dept"), "prereq": ("cno1", "cno2"), "E": ("src", "dst")}
    )
