"""Virtual-node elimination edge cases in streaming mode, and the serialisers.

The on-the-fly virtual-tag elimination of ``publish_events`` must agree with
the materialised pipeline (strip + bottom-up splice) in every corner the
definition permits: virtual tags directly under the root, nested virtual
tags, and virtual nodes whose entire subtree is virtual.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import TransducerRuntime
from repro.engine import TransducerBuilder, compile_plan
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.xmltree.events import (
    CloseEvent,
    OpenEvent,
    TextEvent,
    events_to_tree,
    tree_to_events,
)
from repro.xmltree.serialize import (
    IncrementalXmlSerializer,
    compact_xml_from_events,
    to_compact_xml,
    to_xml,
    xml_from_events,
)
from repro.xmltree.tree import tree, text_node

SCHEMA = RelationalSchema.from_attributes({"P": ("v",)})
INSTANCE = Instance(SCHEMA, {"P": [("p1",), ("p2",)]})


def _all_p() -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))


def _copy(parent_tag: str) -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery((x,), (RelationAtom(f"Reg_{parent_tag}", (x,)),))


def _one_p(value: str) -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery(
        (x,), (RelationAtom("P", (x,)),), (equality(x, Constant(value)),)
    )


def _assert_stream_matches_materialised(tau, instance=INSTANCE):
    """The acceptance criterion: streamed == materialised, byte for byte."""
    reference = TransducerRuntime(tau).run(instance).tree
    plan = compile_plan(tau)
    materialised = plan.publish(instance)
    assert materialised == reference
    assert events_to_tree(plan.publish_events(instance)) == reference
    assert plan.publish_xml(instance) == to_xml(reference)
    assert plan.publish_xml(instance, indent=None) == to_compact_xml(reference)
    return materialised


class TestVirtualEliminationEdgeCases:
    def test_virtual_tag_directly_under_root(self):
        builder = TransducerBuilder("virtual-under-root")
        builder.virtual("v")
        builder.start().emit("q", "v", _all_p())
        builder.state("q").on("v").emit("q", "a", _copy("v"))
        out = _assert_stream_matches_materialised(builder.build())
        # The two v-nodes are spliced out; their a-children surface at the root.
        assert out.child_labels() == ("a", "a")
        assert "v" not in out.labels()

    def test_nested_virtual_tags(self):
        builder = TransducerBuilder("nested-virtual")
        builder.virtual("v", "w")
        builder.start().emit("q", "v", _one_p("p1"))
        (
            builder.state("q")
            .on("v")
            .emit("q", "w", _copy("v"))
            .emit("q", "b", _copy("v"))
        )
        builder.state("q").on("w").emit("q", "a", _copy("w"))
        out = _assert_stream_matches_materialised(builder.build())
        # v -> (w -> a), b collapses to a, b at the root, order preserved.
        assert out.child_labels() == ("a", "b")
        assert out.labels() & {"v", "w"} == set()

    def test_entirely_virtual_subtree_vanishes(self):
        builder = TransducerBuilder("all-virtual-subtree")
        builder.virtual("v", "w")
        builder.start().emit("q", "a", _one_p("p1")).emit("q", "v", _one_p("p1"))
        builder.state("q").on("v").emit("q", "w", _copy("v"))
        builder.state("q").on("w").leaf()
        out = _assert_stream_matches_materialised(builder.build())
        # The v subtree is virtual all the way down: it contributes nothing.
        assert out.child_labels() == ("a",)

    def test_virtual_node_with_text_descendants(self):
        builder = TransducerBuilder("virtual-with-text")
        builder.virtual("v")
        builder.start().emit("q", "v", _all_p())
        builder.state("q").on("v").emit_text(_copy("v"))
        out = _assert_stream_matches_materialised(builder.build())
        assert [node.text for node in out.children] == ["p1", "p2"]

    def test_stopped_virtual_node_contributes_nothing(self):
        # v recurses into v with the same register: the stop condition fires
        # at depth two, and the stopped virtual leaf must vanish entirely.
        builder = TransducerBuilder("virtual-stop")
        builder.virtual("v")
        builder.start().emit("q", "a", _one_p("p1"))
        builder.state("q").on("a").emit("q", "v", _copy("a"))
        builder.state("q").on("v").emit("q", "v", _copy("v")).emit("q", "b", _copy("v"))
        out = _assert_stream_matches_materialised(builder.build())
        a = out.children[0]
        # The inner v repeats (state, tag, register) of its parent v, so the
        # stop condition fires immediately: the stopped virtual leaf is
        # spliced away and only the expanded level's b-child remains.
        assert a.child_labels() == ("b",)

    def test_virtual_recursion_closure(self):
        """The tau2 pattern in miniature: a virtual accumulator under each node."""
        schema = RelationalSchema.from_attributes({"E": ("src", "dst")})
        instance = Instance(
            schema, {"E": [("n0", "n1"), ("n1", "n2"), ("n2", "n0")]}
        )
        x, y = Variable("x"), Variable("y")
        start = ConjunctiveQuery(
            (x,), (RelationAtom("E", (x, y)),), (equality(x, Constant("n0")),)
        )
        step = ConjunctiveQuery((y,), (RelationAtom("Reg", (x,)), RelationAtom("E", (x, y))))
        builder = TransducerBuilder("cyclic-unfold")
        builder.virtual("v")
        builder.start().emit("q", "v", start)
        builder.state("q").on("v").emit("q", "v", step).emit("q", "a", _copy("v"))
        _assert_stream_matches_materialised(builder.build(), instance)


class TestEventRoundTrips:
    def test_tree_to_events_round_trip(self):
        document = tree(
            "r", tree("a", text_node("x"), tree("b")), tree("c"), text_node("y")
        )
        assert events_to_tree(tree_to_events(document)) == document

    def test_events_to_tree_rejects_mismatched_close(self):
        with pytest.raises(ValueError):
            events_to_tree([OpenEvent("a"), CloseEvent("b")])

    def test_events_to_tree_rejects_unclosed(self):
        with pytest.raises(ValueError):
            events_to_tree([OpenEvent("a")])

    def test_events_to_tree_rejects_multiple_roots(self):
        with pytest.raises(ValueError):
            events_to_tree(
                [OpenEvent("a"), CloseEvent("a"), OpenEvent("b"), CloseEvent("b")]
            )

    def test_events_to_tree_rejects_empty(self):
        with pytest.raises(ValueError):
            events_to_tree([])


class TestIncrementalSerializer:
    @pytest.mark.parametrize(
        "document",
        [
            tree("r"),
            tree("r", tree("a"), tree("b")),
            tree("r", text_node("hello")),
            tree("r", text_node("a & b < c")),
            tree("r", tree("a", text_node("x"), text_node("y"))),
            tree("r", tree("a", text_node("x"), tree("b"), text_node("y"))),
            tree("r", tree("a", tree("b", text_node("deep")), text_node("tail"))),
            tree("r", tree("a", tree("empty"))),
        ],
        ids=[
            "empty-root",
            "elements",
            "text-only",
            "escaping",
            "two-texts-inline",
            "mixed-content",
            "nested-mixed",
            "empty-element",
        ],
    )
    def test_byte_identical_to_materialised_renderers(self, document):
        events = list(tree_to_events(document))
        assert xml_from_events(events) == to_xml(document)
        assert compact_xml_from_events(events) == to_compact_xml(document)

    def test_write_callback_streams_chunks(self):
        chunks: list[str] = []
        serializer = IncrementalXmlSerializer(write=chunks.append, indent=None)
        serializer.feed(OpenEvent("r"))
        serializer.feed(TextEvent("x"))
        serializer.feed(CloseEvent("r"))
        assert serializer.finish() == ""
        assert "".join(chunks) == "<r>x</r>"

    def test_none_text_renders_empty(self):
        document = tree("r", text_node("a"))
        stream = [OpenEvent("r"), TextEvent(None), CloseEvent("r")]
        assert compact_xml_from_events(stream) == "<r></r>"
        assert document  # silence unused warnings

    def test_rejects_unbalanced_stream(self):
        serializer = IncrementalXmlSerializer()
        serializer.feed(OpenEvent("r"))
        with pytest.raises(ValueError):
            serializer.finish()

    def test_rejects_mismatched_close(self):
        serializer = IncrementalXmlSerializer()
        serializer.feed(OpenEvent("r"))
        with pytest.raises(ValueError):
            serializer.feed(CloseEvent("a"))

    def test_rejects_text_outside_root(self):
        with pytest.raises(ValueError):
            IncrementalXmlSerializer().feed(TextEvent("x"))

    def test_rejects_second_root(self):
        serializer = IncrementalXmlSerializer()
        serializer.feed(OpenEvent("r"))
        serializer.feed(CloseEvent("r"))
        with pytest.raises(ValueError):
            serializer.feed(OpenEvent("r"))

    def test_rejects_empty_finish(self):
        with pytest.raises(ValueError):
            IncrementalXmlSerializer().finish()
