"""The canonical wire codecs shared by the WAL and the network protocol.

The contract: ``to_json``/``from_json`` round-trip Deltas, Instances and
EditScripts exactly (including tuples, bytes, None and mixed-type values
that plain JSON cannot carry), the encoding is canonical (equal values ->
identical bytes, independent of construction order), and malformed payloads
fail loudly with :class:`~repro.relational.wire.WireError` instead of
decoding to something almost right.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.relational.wire import (
    WIRE_FORMAT,
    WireError,
    canonical_json,
    decode_rows,
    decode_value,
    delta_from_wire,
    delta_to_wire,
    encode_rows,
    encode_value,
    instance_from_wire,
    instance_to_wire,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    example_registrar_instance,
    generate_registrar_instance,
)
from repro.xmltree.diff import (
    EditScript,
    diff_trees,
    tree_from_wire,
    tree_to_wire,
    trees_equal,
)
from repro.xmltree.tree import TreeNode


# ---------------------------------------------------------------------------
# Values.
# ---------------------------------------------------------------------------

MIXED_VALUES = [
    "plain",
    "",
    "with\nnewline and é",
    0,
    -17,
    2**70,
    3.5,
    -0.0,
    True,
    False,
    None,
    (1, "two", None),
    ((1, 2), (3, (4, 5))),
    (),
    b"",
    b"\x00\xff raw bytes",
]


@pytest.mark.parametrize("value", MIXED_VALUES, ids=repr)
def test_value_round_trip(value):
    encoded = encode_value(value)
    json.dumps(encoded)  # must be JSON-representable as-is
    decoded = decode_value(encoded)
    assert decoded == value
    assert type(decoded) is type(value)


def test_bool_and_int_do_not_collide():
    # True == 1 in Python; the codec must keep the types apart.
    assert decode_value(encode_value(True)) is True
    assert decode_value(encode_value(1)) == 1
    assert decode_value(encode_value(1)) is not True


def test_unencodable_value_rejected():
    with pytest.raises(WireError):
        encode_value({"a": "dict"})
    with pytest.raises(WireError):
        encode_value(object())


def test_undecodable_payload_rejected():
    for payload in ({"x": 1}, {"t": "not-a-list"}, {"b": 5}, {"b": "not base64!"}):
        with pytest.raises(WireError):
            decode_value(payload)


def test_rows_are_canonically_sorted():
    rows = [(2, "b"), (1, "a"), (1, None)]
    encoded = encode_rows(rows)
    assert encoded == encode_rows(reversed(rows))
    assert set(decode_rows(encoded, "test")) == set(tuple(r) for r in rows)


# ---------------------------------------------------------------------------
# Deltas.
# ---------------------------------------------------------------------------


def _random_delta(rng: random.Random, instance: Instance) -> Delta:
    """A random workload delta: some deletions of live rows, some inserts."""
    inserted: dict = {}
    deleted: dict = {}
    for relation in instance.schema.names():
        rows = sorted(instance[relation])
        if rows and rng.random() < 0.8:
            deleted[relation] = set(rng.sample(rows, k=rng.randrange(1, min(4, len(rows) + 1))))
        if rng.random() < 0.8:
            arity = instance.schema.arity(relation)
            inserted[relation] = {
                tuple(f"w{rng.randrange(1000)}" for _ in range(arity))
                for _ in range(rng.randrange(1, 4))
            }
    return Delta(inserted=inserted, deleted=deleted)


def test_delta_round_trip_over_random_workloads():
    rng = random.Random(7)
    for seed in range(20):
        instance = generate_registrar_instance(12, seed=seed)
        delta = _random_delta(rng, instance)
        payload = delta.to_wire()
        assert payload["format"] == WIRE_FORMAT
        assert Delta.from_wire(payload) == delta
        assert Delta.from_json(delta.to_json()) == delta


def test_delta_with_mixed_value_types():
    delta = Delta(
        inserted={"r": {(1, "a", None), (b"\x00", (2, 3), 4.5)}},
        deleted={"s": {(True, False)}},
    )
    assert Delta.from_json(delta.to_json()) == delta


def test_delta_json_is_canonical():
    a = Delta(inserted={"r": {(1,), (2,)}, "s": {(3,)}})
    b = Delta(inserted={"s": {(3,)}, "r": {(2,), (1,)}})
    assert a.to_json() == b.to_json()
    # and deterministic across processes: no dict-order or hash-order leaks
    assert a.to_json() == Delta.from_json(a.to_json()).to_json()


def test_delta_from_wire_rejects_garbage():
    with pytest.raises(WireError):
        Delta.from_json("[]")
    with pytest.raises(WireError):
        Delta.from_wire({"format": WIRE_FORMAT, "kind": "edits"})
    with pytest.raises(WireError):
        Delta.from_wire({"format": 99, "kind": "delta", "inserted": {}, "deleted": {}})


# ---------------------------------------------------------------------------
# Instances.
# ---------------------------------------------------------------------------


def test_instance_round_trip():
    instance = example_registrar_instance()
    payload = instance_to_wire(instance)
    restored = instance_from_wire(payload)
    assert restored.schema.names() == instance.schema.names()
    for relation in instance.schema.names():
        assert set(restored[relation]) == set(instance[relation])


def test_instance_round_trip_is_representation_agnostic():
    from repro.relational.columnar import ensure_encoded

    plain = generate_registrar_instance(10, seed=3)
    encoded = generate_registrar_instance(10, seed=3)
    ensure_encoded(encoded)
    assert canonical_json(instance_to_wire(plain)) == canonical_json(
        instance_to_wire(encoded)
    )


def test_instance_wire_rejects_bad_schema():
    payload = instance_to_wire(example_registrar_instance())
    payload = json.loads(canonical_json(payload))
    payload["relations"]["course"]["rows"].append(["only-one-column"])
    with pytest.raises(WireError):
        instance_from_wire(payload)


# ---------------------------------------------------------------------------
# Trees and edit scripts.
# ---------------------------------------------------------------------------


def _tau1_tree(instance: Instance, tau1) -> TreeNode:
    from repro.serve import ViewServer

    vs = ViewServer()
    vs.register_view("t", tau1)
    return vs.publish("t", source=instance, output="tree")


def test_tree_wire_round_trip(tau1):
    tree = _tau1_tree(example_registrar_instance(), tau1)
    payload = tree_to_wire(tree)
    json.dumps(payload)
    assert trees_equal(tree_from_wire(payload), tree)


def test_tree_wire_survives_exponential_depth():
    # A path of depth 5000: the recursive json encoder would blow the stack
    # on a nested encoding; the flat preorder encoding must not.
    leaf = TreeNode("leaf")
    node = leaf
    for depth in range(5000):
        node = TreeNode(f"n{depth % 7}", children=(node,))
    payload = tree_to_wire(node)
    restored = tree_from_wire(payload)
    assert trees_equal(restored, node)


def test_tree_wire_rejects_malformed_payloads():
    good = tree_to_wire(TreeNode("a", children=(TreeNode("b"),)))
    with pytest.raises(WireError):
        tree_from_wire([])
    with pytest.raises(WireError):
        tree_from_wire(good + [["trailing", 0, None]])
    with pytest.raises(WireError):
        tree_from_wire(good[:-1])  # truncated: a child is missing


def test_edit_script_round_trip_and_replay(tau1):
    old_instance = generate_registrar_instance(14, seed=1)
    new_instance = generate_registrar_instance(14, seed=2)
    old_tree = _tau1_tree(old_instance, tau1)
    new_tree = _tau1_tree(new_instance, tau1)
    script = diff_trees(old_tree, new_tree)
    restored = EditScript.from_json(script.to_json())
    assert len(restored) == len(script)
    assert trees_equal(restored.apply(old_tree), new_tree)


def test_edit_script_round_trip_over_random_commits(tau1):
    rng = random.Random(11)
    instance = generate_registrar_instance(12, seed=5)
    from repro.serve import ViewServer

    vs = ViewServer()
    vs.register_view("t", tau1)
    handle = vs.attach(instance, name="db")
    sub = vs.subscribe("t", handle)
    tree = sub.tree
    for _ in range(6):
        handle.commit(_random_delta(rng, handle.instance))
        event = sub.pop()
        wire_script = EditScript.from_json(event.edits.to_json())
        tree = wire_script.apply(tree)
        assert trees_equal(tree, vs.publish("t", source=handle, output="tree"))


def test_edit_script_wire_rejects_bad_ops():
    with pytest.raises(WireError):
        EditScript.from_wire(
            {"format": WIRE_FORMAT, "kind": "edits", "edits": [{"op": "explode"}]}
        )
