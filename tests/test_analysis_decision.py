"""Tests for the Section 5 decision procedures: emptiness, membership, equivalence."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DecisionProblem,
    UndecidableProblemError,
    are_equivalent,
    complexity_of,
    find_counterexample,
    is_decidable,
    is_empty,
    is_member,
)
from repro.analysis.complexity import ComplexityBound, TABLE_II, table_ii_rows
from repro.analysis.composition import compose_path, composed_queries_to_tag
from repro.analysis.containment import (
    cq_contained_in,
    cq_equivalent,
    count_equivalent,
    reduce_query,
    ucq_equivalent,
)
from repro.analysis.equivalence import eliminate_virtual_nonrecursive
from repro.analysis.membership import MembershipStatus
from repro.core import RuleQuery, classify, publish
from repro.core.classes import TransducerClass
from repro.core.dependency import DependencyGraph
from repro.core.rules import RuleItem, TransductionRule
from repro.core.transducer import make_transducer
from repro.logic import parse_cq
from repro.logic.cq import UnionOfConjunctiveQueries
from repro.workloads.registrar import generate_registrar_instance
from repro.xmltree.tree import tree


def simple_cq_transducer(start_body: str, child_body: str | None = None, virtual=()):
    """A small helper building one- or two-level CQ transducers for the tests."""
    start = parse_cq(start_body)
    rules = [TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(start, start.arity)),))]
    if child_body is not None:
        child = parse_cq(child_body)
        rules.append(
            TransductionRule("q", "a", (RuleItem("q", "b", RuleQuery(child, child.arity)),))
        )
        rules.append(TransductionRule("q", "b", ()))
    else:
        rules.append(TransductionRule("q", "a", ()))
    return make_transducer(rules, start_state="q0", root_tag="r", virtual_tags=virtual)


class TestContainment:
    def test_classic_containment(self):
        specific = parse_cq("ans(x) :- E(x, y), E(y, z)")
        general = parse_cq("ans(x) :- E(x, y)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_containment_with_inequalities(self):
        left = parse_cq("ans(x, y) :- E(x, y), x != y")
        right = parse_cq("ans(x, y) :- E(x, y)")
        assert cq_contained_in(left, right)
        assert not cq_contained_in(right, left)

    def test_inequality_container_needs_matching_constraint(self):
        left = parse_cq("ans(x, y) :- E(x, y)")
        right = parse_cq("ans(x, y) :- E(x, y), x != y")
        # The identity-pair instance {E(a, a)} separates them.
        assert not cq_contained_in(left, right)

    def test_equivalence_modulo_variable_names(self):
        left = parse_cq("ans(u) :- course(u, v, w), w = 'CS'")
        right = parse_cq("ans(c) :- course(c, t, d), d = 'CS'")
        assert cq_equivalent(left, right)

    def test_unsatisfiable_contained_in_everything(self):
        bottom = parse_cq("ans(x) :- x = 'a', x != 'a'")
        anything = parse_cq("ans(x) :- E(x, y)")
        assert cq_contained_in(bottom, anything)

    def test_ucq_equivalence(self):
        union_one = UnionOfConjunctiveQueries(
            [parse_cq("ans(x) :- P(x)"), parse_cq("ans(x) :- Q(x)")]
        )
        union_two = UnionOfConjunctiveQueries(
            [parse_cq("ans(x) :- Q(x)"), parse_cq("ans(x) :- P(x)")]
        )
        assert ucq_equivalent(union_one, union_two)
        assert not ucq_equivalent(union_one, UnionOfConjunctiveQueries([parse_cq("ans(x) :- P(x)")]))

    def test_reduce_query_drops_constant_head(self):
        query = parse_cq("ans(x, y) :- E(x, z), y = 'c'")
        reduced = reduce_query(query)
        assert [v.name for v in reduced.head] == ["x"]

    def test_reduce_query_drops_duplicate_head(self):
        query = parse_cq("ans(x, y) :- E(x, z), x = y")
        reduced = reduce_query(query)
        assert len(reduced.head) == 1

    def test_count_equivalence(self):
        left = parse_cq("ans(x, y) :- E(x, z), y = 'c'")
        right = parse_cq("ans(x) :- E(x, z)")
        assert count_equivalent(left, right)
        assert not count_equivalent(left, parse_cq("ans(x, y) :- E(x, y)"))


class TestComposition:
    def test_compose_path_matches_runtime(self, tau1, registrar_instance):
        graph = DependencyGraph(tau1)
        paths = graph.paths_to_tag("course")
        short = min(paths, key=len)
        composed = compose_path(tau1, short)
        # The one-edge path to `course` is the start rule query: CS courses.
        expected = {
            (row[0], row[1]) for row in registrar_instance["course"] if row[2] == "CS"
        }
        assert composed.evaluate(registrar_instance) == expected

    def test_composed_queries_to_tag(self, tau1):
        queries = composed_queries_to_tag(tau1, "cno")
        assert queries and all(len(q.head) == 1 for q in queries)


class TestTableII:
    def test_registry_is_complete_for_all_problems(self):
        problems = {entry.problem for entry in TABLE_II}
        assert problems == set(DecisionProblem)

    def test_lookup_matches_paper_rows(self):
        cq_tuple_normal = TransducerClass.parse("PT(CQ, tuple, normal)")
        assert complexity_of(DecisionProblem.EMPTINESS, cq_tuple_normal).bound is ComplexityBound.PTIME
        assert (
            complexity_of(DecisionProblem.MEMBERSHIP, cq_tuple_normal).bound
            is ComplexityBound.SIGMA2P_COMPLETE
        )
        assert not is_decidable(DecisionProblem.EQUIVALENCE, cq_tuple_normal)

        nonrec = TransducerClass.parse("PTnr(CQ, tuple, virtual)")
        assert complexity_of(DecisionProblem.EMPTINESS, nonrec).bound is ComplexityBound.NP_COMPLETE
        assert complexity_of(DecisionProblem.EQUIVALENCE, nonrec).bound is ComplexityBound.PI3P_COMPLETE

        fo_any = TransducerClass.parse("PT(FO, relation, virtual)")
        assert not is_decidable(DecisionProblem.EMPTINESS, fo_any)

    def test_table_rows_render(self):
        rows = table_ii_rows()
        assert len(rows) == 8
        assert all(len(row) == 4 for row in rows)


class TestEmptiness:
    def test_satisfiable_start_rule_is_nonempty(self):
        transducer = simple_cq_transducer("ans(x) :- R(x, y)")
        result = is_empty(transducer)
        assert not result.empty and result.witness_query is not None

    def test_contradictory_start_rule_is_empty(self):
        transducer = simple_cq_transducer("ans(x) :- R(x, y), x = 'a', x != 'a'")
        assert is_empty(transducer).empty

    def test_register_reading_start_rule_is_empty(self):
        transducer = simple_cq_transducer("ans(x) :- Reg(x)")
        assert is_empty(transducer).empty

    def test_virtual_chain_satisfiable(self):
        transducer = simple_cq_transducer(
            "ans(x) :- R(x, y)", "ans(z) :- Reg_a(z), z != 'forbidden'", virtual={"a"}
        )
        assert not is_empty(transducer).empty

    def test_virtual_chain_unsatisfiable(self):
        transducer = simple_cq_transducer(
            "ans(x) :- R(x, y), x = 'only'", "ans(z) :- Reg_a(z), z != 'only'", virtual={"a"}
        )
        assert is_empty(transducer).empty

    def test_fo_transducer_raises(self, tau3):
        with pytest.raises(UndecidableProblemError):
            is_empty(tau3)

    def test_figure1_views_nonempty(self, tau1):
        assert not is_empty(tau1).empty


class TestMembership:
    def test_root_mismatch(self, tau1):
        assert is_member(tau1, tree("x")).status is MembershipStatus.NOT_MEMBER

    def test_foreign_label(self, tau1):
        assert is_member(tau1, tree("db", "zzz")).status is MembershipStatus.NOT_MEMBER

    def test_produced_tree_is_member(self):
        transducer = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        target = tree("r", tree("a", "b"))
        result = is_member(transducer, target)
        assert result.status is MembershipStatus.MEMBER
        assert publish(transducer, result.witness) == target

    def test_impossible_shape_not_member(self):
        # Every generated `a` node always has exactly one `b` child (its own
        # register value), so an `a` leaf next to an expanded one is impossible.
        transducer = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        target = tree("r", tree("a", "b", "b"))
        result = is_member(transducer, target, exhaustive=True, max_domain_size=3, max_tuples=3)
        assert result.status in (MembershipStatus.NOT_MEMBER, MembershipStatus.UNKNOWN)
        assert result.status is not MembershipStatus.MEMBER

    def test_two_course_tree_never_refuted(self, tau1, registrar_instance):
        # A tree actually produced by tau1 is a member by construction; the fast
        # (non-exhaustive) procedure may answer MEMBER or UNKNOWN (it is a
        # Sigma^p_2 problem), but must never answer NOT_MEMBER.
        produced = publish(tau1, generate_registrar_instance(3, cs_fraction=1.0, max_prereqs=0, seed=1))
        result = is_member(tau1, produced)
        assert result.status is not MembershipStatus.NOT_MEMBER

    def test_member_with_matching_text_values(self):
        transducer = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        # Target tree whose labels match the canonical frozen constants is found
        # by the constructive candidate directly.
        target = tree("r", tree("a", "b"))
        result = is_member(transducer, target)
        assert result.is_member

    def test_undecidable_fragment_raises(self, tau2):
        with pytest.raises(UndecidableProblemError):
            is_member(tau2, tree("db"))


class TestEquivalence:
    def test_identical_transducers_equivalent(self):
        left = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        right = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        assert are_equivalent(left, right).equivalent

    def test_renamed_variables_equivalent(self):
        left = simple_cq_transducer("ans(x) :- R(x, y)")
        right = simple_cq_transducer("ans(u) :- R(u, w)")
        assert are_equivalent(left, right).equivalent

    def test_different_selection_not_equivalent(self):
        left = simple_cq_transducer("ans(x) :- R(x, y)")
        right = simple_cq_transducer("ans(x) :- R(x, y), x != 'a'")
        verdict = are_equivalent(left, right)
        assert not verdict.equivalent

    def test_different_shape_not_equivalent(self):
        left = simple_cq_transducer("ans(x) :- R(x, y)")
        right = simple_cq_transducer("ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)")
        assert not are_equivalent(left, right).equivalent

    def test_recursive_fragment_raises(self, tau1):
        with pytest.raises(UndecidableProblemError):
            are_equivalent(tau1, tau1)

    def test_virtual_elimination_preserves_output(self):
        virtual_version = simple_cq_transducer(
            "ans(x) :- R(x, y)", "ans(z) :- Reg_a(z), z != 'skip'", virtual={"a"}
        )
        plain = eliminate_virtual_nonrecursive(virtual_version)
        assert not plain.uses_virtual_nodes()
        from repro.workloads.random_instances import random_graph_instance

        for seed in range(3):
            instance = random_graph_instance(4, 6, seed=seed, relation="R")
            assert publish(virtual_version, instance) == publish(plain, instance)

    def test_virtual_equivalence(self):
        left = simple_cq_transducer(
            "ans(x) :- R(x, y)", "ans(z) :- Reg_a(z)", virtual={"a"}
        )
        right = simple_cq_transducer(
            "ans(u) :- R(u, v)", "ans(w) :- Reg_a(w)", virtual={"a"}
        )
        assert are_equivalent(left, right).equivalent

    def test_find_counterexample(self):
        left = simple_cq_transducer("ans(x) :- R(x, y)")
        right = simple_cq_transducer("ans(x) :- R(x, y), x != 'n0'")
        from repro.workloads.random_instances import random_graph_instance

        instances = [random_graph_instance(4, 6, seed=s, relation="R") for s in range(5)]
        witness = find_counterexample(left, right, instances)
        assert witness is not None
        assert publish(left, witness) != publish(right, witness)
