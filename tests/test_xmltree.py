"""Unit tests for the XML substrate: trees, serialisation, DTDs."""

from __future__ import annotations

import pytest

from repro.xmltree import DTD, ExtendedDTD, TreeNode, alt, concat, star, sym, to_xml, tree
from repro.xmltree.dtd import Epsilon, opt, plus
from repro.xmltree.serialize import to_compact_xml
from repro.xmltree.tree import is_valid_tree_domain, text_node


class TestTree:
    def test_tree_constructor_promotes_strings(self):
        node = tree("db", tree("course", "cno", "title"), "course")
        assert node.child_labels() == ("course", "course")
        assert node.children[0].child_labels() == ("cno", "title")

    def test_size_and_depth(self):
        node = tree("a", tree("b", "c"), "d")
        assert node.size() == 4
        assert node.depth() == 3

    def test_labels_and_find_all(self):
        node = tree("a", tree("b", "c"), tree("b"))
        assert node.labels() == {"a", "b", "c"}
        assert len(node.find_all("b")) == 2

    def test_tree_domain_is_valid(self):
        node = tree("a", tree("b", "c", "d"), "e")
        domain = node.tree_domain()
        assert is_valid_tree_domain(domain)
        assert domain[()] == "a"
        assert domain[(1, 2)] == "d"

    def test_invalid_tree_domains(self):
        assert not is_valid_tree_domain([(1,)])
        assert not is_valid_tree_domain([(), (2,)])
        assert is_valid_tree_domain([(), (1,), (2,)])

    def test_text_node(self):
        node = text_node("hello")
        assert node.is_text() and node.text == "hello"

    def test_map_labels(self):
        node = tree("a", "b").map_labels({"b": "c"})
        assert node.child_labels() == ("c",)

    def test_equality_is_structural(self):
        assert tree("a", "b") == tree("a", "b")
        assert tree("a", "b") != tree("a", "c")


class TestSerialisation:
    def test_compact_xml(self):
        node = tree("db", TreeNode("course", (text_node("cs101"),)))
        assert to_compact_xml(node) == "<db><course>cs101</course></db>"

    def test_pretty_xml_escapes(self):
        node = TreeNode("a", (text_node("x < y"),))
        assert "&lt;" in to_xml(node)

    def test_empty_element(self):
        assert to_compact_xml(tree("a")) == "<a/>"


class TestRegex:
    def test_concat_and_star(self):
        model = concat("cno", "title", star("course"))
        assert model.matches(["cno", "title"])
        assert model.matches(["cno", "title", "course", "course"])
        assert not model.matches(["title", "cno"])

    def test_alt(self):
        model = alt("b1", "b2")
        assert model.matches(["b1"]) and model.matches(["b2"])
        assert not model.matches(["b1", "b2"]) and not model.matches([])

    def test_opt_and_plus(self):
        assert opt("a").matches([]) and opt("a").matches(["a"])
        assert plus("a").matches(["a", "a"]) and not plus("a").matches([])

    def test_epsilon(self):
        assert Epsilon().matches([]) and not Epsilon().matches(["a"])

    def test_nullable_and_symbols(self):
        model = concat(star("a"), alt("b", Epsilon()))
        assert model.nullable()
        assert model.symbols() == {"a", "b"}


class TestDTD:
    @pytest.fixture
    def registrar_dtd(self) -> DTD:
        return DTD(
            "db",
            {
                "db": star("course"),
                "course": concat("cno", "title", "prereq"),
                "prereq": star("course"),
            },
        )

    def test_conforming_tree(self, registrar_dtd):
        document = tree("db", tree("course", "cno", "title", tree("prereq")))
        assert registrar_dtd.conforms(document)

    def test_wrong_root(self, registrar_dtd):
        assert not registrar_dtd.conforms(tree("course", "cno", "title", "prereq"))

    def test_missing_child(self, registrar_dtd):
        assert not registrar_dtd.conforms(tree("db", tree("course", "cno", "title")))

    def test_recursive_conformance(self, registrar_dtd):
        inner = tree("course", "cno", "title", tree("prereq"))
        document = tree("db", tree("course", "cno", "title", tree("prereq", inner)))
        assert registrar_dtd.conforms(document)

    def test_alphabet(self, registrar_dtd):
        assert {"db", "course", "cno", "title", "prereq"} <= registrar_dtd.alphabet()

    def test_normalized_preserves_language(self):
        dtd = DTD("a", {"a": concat(alt("b", "c"), star("d"))})
        normalized = dtd.normalized()
        # The normalised DTD only has rules of the three simple shapes, over a
        # possibly larger alphabet; its auxiliary tags are marked.
        assert normalized.auxiliary_tags()
        for regex in normalized.rules.values():
            assert type(regex).__name__ in {"Concat", "Alt", "Star", "Epsilon", "Symbol"}

    def test_extended_dtd_even_number_of_leaves(self):
        # L = trees r(a^n) with n even: not expressible by a DTD, easy for an
        # extended DTD with two auxiliary root variants... here we use a
        # simpler classic: leaves relabelled from two auxiliary symbols.
        dtd = DTD("r", {"r": concat(star(concat("ae", "ao")))})
        extended = ExtendedDTD(dtd, {"ae": "a", "ao": "a"})
        assert extended.conforms(tree("r", "a", "a"))
        assert extended.conforms(tree("r", "a", "a", "a", "a"))
        assert not extended.conforms(tree("r", "a"))
        assert not extended.conforms(tree("r", "a", "a", "a"))

    def test_extended_dtd_visible_alphabet(self):
        dtd = DTD("r", {"r": alt("b1", "b2")})
        extended = ExtendedDTD(dtd, {"b1": "b", "b2": "b"})
        assert "b" in extended.visible_alphabet()
        assert extended.conforms(tree("r", "b"))
        assert not extended.conforms(tree("r", "b", "b"))
