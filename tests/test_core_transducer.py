"""Unit tests for the transducer definition, rules, classification and dependency graph."""

from __future__ import annotations

import pytest

from repro.core import (
    DependencyGraph,
    OutputKind,
    PublishingTransducer,
    RuleQuery,
    StoreKind,
    TransducerClass,
    TransducerDefinitionError,
    classify,
)
from repro.core.classes import all_fragments
from repro.core.rules import RuleItem, TransductionRule, leaf_rule, rule
from repro.core.transducer import make_transducer
from repro.logic import parse_cq
from repro.logic.base import QueryLogic
from repro.workloads.blowup import binary_counter_transducer, chain_of_diamonds_transducer


def simple_rules():
    start = parse_cq("ans(x) :- R(x, y)")
    step = parse_cq("ans(x) :- Reg_a(y), R(y, x)")
    return [
        TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(start, 1)),)),
        TransductionRule("q", "a", (RuleItem("q", "a", RuleQuery(step, 1)),)),
    ]


class TestRuleQuery:
    def test_group_and_register_variables(self):
        query = parse_cq("ans(x, y) :- R(x, y)")
        rq = RuleQuery(query, 1)
        assert [v.name for v in rq.group_variables] == ["x"]
        assert [v.name for v in rq.register_variables] == ["y"]
        assert not rq.is_tuple_query
        assert RuleQuery(query, 2).is_tuple_query

    def test_group_arity_bounds(self):
        query = parse_cq("ans(x) :- R(x, y)")
        with pytest.raises(ValueError):
            RuleQuery(query, 2)

    def test_uses_register(self):
        assert RuleQuery(parse_cq("ans(x) :- Reg(x)"), 1).uses_register()
        assert RuleQuery(parse_cq("ans(x) :- Reg_a(x)"), 1).uses_register()
        assert not RuleQuery(parse_cq("ans(x) :- R(x, y)"), 1).uses_register()


class TestDefinition:
    def test_make_transducer_infers_structure(self):
        transducer = make_transducer(simple_rules(), start_state="q0", root_tag="r")
        assert transducer.states == {"q0", "q"}
        assert "a" in transducer.alphabet
        assert transducer.register_arity("a") == 1
        assert transducer.register_arity("r") == 0

    def test_duplicate_rule_rejected(self):
        rules = simple_rules() + [TransductionRule("q", "a", ())]
        with pytest.raises(TransducerDefinitionError):
            make_transducer(rules, start_state="q0", root_tag="r")

    def test_missing_start_rule_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            make_transducer(simple_rules()[1:], start_state="q0", root_tag="r")

    def test_text_rule_with_rhs_rejected(self):
        bad = TransductionRule(
            "q", "text", (RuleItem("q", "a", RuleQuery(parse_cq("ans(x) :- R(x, y)"), 1)),)
        )
        with pytest.raises(TransducerDefinitionError):
            make_transducer(simple_rules() + [bad], start_state="q0", root_tag="r")

    def test_virtual_root_rejected(self):
        with pytest.raises(TransducerDefinitionError):
            make_transducer(simple_rules(), start_state="q0", root_tag="r", virtual_tags={"r"})

    def test_register_arity_conflict_rejected(self):
        other = parse_cq("ans(x, y) :- R(x, y)")
        rules = simple_rules() + [
            TransductionRule("q", "b", (RuleItem("q", "a", RuleQuery(other, 2)),))
        ]
        with pytest.raises(TransducerDefinitionError):
            make_transducer(rules, start_state="q0", root_tag="r")

    def test_start_state_on_rhs_rejected(self):
        bad = [
            TransductionRule(
                "q0", "r", (RuleItem("q0", "a", RuleQuery(parse_cq("ans(x) :- R(x, y)"), 1)),)
            )
        ]
        with pytest.raises(TransducerDefinitionError):
            make_transducer(bad, start_state="q0", root_tag="r")

    def test_rule_lookup_defaults_to_empty(self):
        transducer = make_transducer(simple_rules(), start_state="q0", root_tag="r")
        assert transducer.rule_for("q", "unknown").is_leaf_rule
        assert not transducer.has_rule("q", "unknown")

    def test_source_relations_exclude_registers(self):
        transducer = make_transducer(simple_rules(), start_state="q0", root_tag="r")
        assert transducer.source_relation_names() == {"R"}

    def test_validate_against_schema(self, simple_schema):
        transducer = make_transducer(simple_rules(), start_state="q0", root_tag="r")
        assert transducer.validate_against_schema(simple_schema) == [
            "rule queries reference unknown source relation 'R'"
        ]

    def test_describe_mentions_rules(self):
        transducer = make_transducer(simple_rules(), start_state="q0", root_tag="r")
        assert "(q0, r)" in transducer.describe()

    def test_rule_helpers(self):
        r = rule("q", "a", [("q", "b", RuleQuery(parse_cq("ans(x) :- R(x, y)"), 1))])
        assert r.child_pairs() == (("q", "b"),)
        assert leaf_rule("q", "b").is_leaf_rule


class TestDependencyGraph:
    def test_recursive_detection(self, tau1, tau3):
        assert DependencyGraph(tau1).is_recursive()
        assert not DependencyGraph(tau3).is_recursive()

    def test_reachable_nodes(self, tau3):
        graph = DependencyGraph(tau3)
        assert graph.root == ("q0", "db")
        assert ("q", "course") in graph.reachable_nodes()

    def test_simple_paths(self, tau3):
        graph = DependencyGraph(tau3)
        paths = graph.paths_to_tag("text")
        assert paths
        assert all(path[-1].target[1] == "text" for path in paths)

    def test_node_types(self, tau1):
        graph = DependencyGraph(tau1)
        assert graph.node_types()[("q", "course")] == ("cno", "title", "prereq")

    def test_depth_of_nonrecursive(self, tau3):
        assert DependencyGraph(tau3).depth() == 3


class TestClassification:
    def test_figure1_views(self, tau1, tau2, tau3):
        assert str(classify(tau1)) == "PT(CQ, tuple, normal)"
        assert str(classify(tau2)) == "PT(FO, relation, virtual)"
        assert str(classify(tau3)) == "PTnr(FO, tuple, normal)"

    def test_blowup_transducers(self):
        assert str(classify(chain_of_diamonds_transducer())) == "PT(CQ, tuple, normal)"
        assert str(classify(binary_counter_transducer())) == "PT(CQ, relation, normal)"

    def test_class_lattice(self):
        small = TransducerClass.parse("PTnr(CQ, tuple, normal)")
        big = TransducerClass.parse("PT(IFP, relation, virtual)")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.join(small) == big

    def test_class_parse_round_trip(self):
        for fragment in all_fragments():
            assert TransducerClass.parse(str(fragment)) == fragment

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TransducerClass.parse("XX(CQ, tuple, normal)")
        with pytest.raises(ValueError):
            TransducerClass.parse("PT(CQ, tuple)")

    def test_store_and_output_order(self):
        assert StoreKind.RELATION.includes(StoreKind.TUPLE)
        assert OutputKind.VIRTUAL.includes(OutputKind.NORMAL)
        assert QueryLogic.IFP.includes(QueryLogic.CQ)
