"""Unit tests for conjunctive queries: evaluation, satisfiability, composition, parsing."""

from __future__ import annotations

import pytest

from repro.logic import ConjunctiveQuery, RelationAtom, UnionOfConjunctiveQueries, parse_cq
from repro.logic.builders import atom, constant_cq, cq, cq_to_formula_query, empty_cq, register_atom
from repro.logic.cq import Comparison, equality, inequality
from repro.logic.parser import ParseError
from repro.logic.terms import Constant, Variable, var
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema


@pytest.fixture
def course_instance(simple_schema):
    return Instance(
        simple_schema,
        {
            "course": [("c1", "Intro", "CS"), ("c2", "DB", "CS"), ("m1", "Calc", "Math")],
            "prereq": [("c2", "c1")],
            "E": [("a", "b"), ("b", "c"), ("c", "a")],
        },
    )


class TestEvaluation:
    def test_simple_join(self, course_instance):
        query = parse_cq("ans(c, t) :- course(c, t, d), prereq(x, c)")
        assert query.evaluate(course_instance) == {("c1", "Intro")}

    def test_equality_with_constant(self, course_instance):
        query = parse_cq("ans(c) :- course(c, t, d), d = 'CS'")
        assert query.evaluate(course_instance) == {("c1",), ("c2",)}

    def test_inequality(self, course_instance):
        query = parse_cq("ans(c) :- course(c, t, d), d != 'CS'")
        assert query.evaluate(course_instance) == {("m1",)}

    def test_repeated_variable_in_atom(self, course_instance):
        query = parse_cq("ans(x) :- E(x, x)")
        assert query.evaluate(course_instance) == frozenset()

    def test_head_variable_bound_only_by_equality(self, course_instance):
        query = parse_cq("ans(x) :- course(c, t, d), x = 'ok'")
        assert query.evaluate(course_instance) == {("ok",)}

    def test_unknown_relation_yields_empty(self, course_instance):
        query = ConjunctiveQuery((var("x"),), (RelationAtom("missing", (var("x"),)),))
        assert query.evaluate(course_instance) == frozenset()

    def test_constant_in_atom_position(self, course_instance):
        query = cq(["t"], [atom("course", "c2", var("t"), var("d"))])
        assert query.evaluate(course_instance) == {("DB",)}

    def test_boolean_query(self, course_instance):
        query = parse_cq("ans() :- prereq(x, y)")
        assert query.holds(course_instance)
        empty = parse_cq("ans() :- prereq(x, x)")
        assert not empty.holds(course_instance)

    def test_cross_product(self, course_instance):
        query = parse_cq("ans(x, y) :- prereq(x, z), prereq(w, y)")
        assert query.evaluate(course_instance) == {("c2", "c1")}

    def test_empty_cq_builder(self, course_instance):
        assert empty_cq(["x"]).evaluate(course_instance) == frozenset()

    def test_constant_cq_builder(self, course_instance):
        assert constant_cq(["a", 1]).evaluate(course_instance) == {("a", 1)}

    def test_union_query(self, course_instance):
        union = UnionOfConjunctiveQueries(
            [parse_cq("ans(c) :- course(c, t, d), d = 'CS'"), parse_cq("ans(c) :- course(c, t, d), d = 'Math'")]
        )
        assert union.evaluate(course_instance) == {("c1",), ("c2",), ("m1",)}

    def test_union_requires_same_width(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([parse_cq("ans(x) :- E(x, y)"), parse_cq("ans(x, y) :- E(x, y)")])


class TestSatisfiability:
    def test_plain_query_satisfiable(self):
        assert parse_cq("ans(x) :- E(x, y)").is_satisfiable()

    def test_contradictory_constants(self):
        assert not parse_cq("ans(x) :- x = 'a', x = 'b'").is_satisfiable()

    def test_equality_then_inequality(self):
        assert not parse_cq("ans(x, y) :- x = y, x != y").is_satisfiable()

    def test_inequality_with_constant_ok(self):
        assert parse_cq("ans(x) :- E(x, y), x != 'a'").is_satisfiable()

    def test_transitive_equalities(self):
        assert not parse_cq("ans(x) :- x = y, y = z, z != x").is_satisfiable()

    def test_constant_propagation_through_classes(self):
        assert not parse_cq("ans(x) :- x = y, y = 'a', x = 'b'").is_satisfiable()

    def test_empty_body_satisfiable(self):
        assert parse_cq("ans()").is_satisfiable()


class TestStructure:
    def test_variables_and_existential(self):
        query = parse_cq("ans(x) :- E(x, y), y != 'a'")
        assert query.variables() == {var("x"), var("y")}
        assert query.existential_variables() == {var("y")}

    def test_relation_names_and_constants(self):
        query = parse_cq("ans(x) :- E(x, y), course(y, t, d), d = 'CS'")
        assert query.relation_names() == {"E", "course"}
        assert query.constants() == {"CS"}

    def test_head_must_be_variables(self):
        with pytest.raises(TypeError):
            ConjunctiveQuery((Constant("a"),), ())

    def test_substitute_head_constant_becomes_equality(self):
        query = parse_cq("ans(x) :- E(x, y)")
        substituted = query.substitute({var("x"): Constant("a")})
        assert any(c for c in substituted.comparisons if not c.negated)

    def test_rename_apart_produces_fresh_variables(self):
        query = parse_cq("ans(x) :- E(x, y)")
        renamed = query.rename_apart({var("x"), var("y")})
        assert renamed.variables().isdisjoint({var("x"), var("y")})

    def test_str_round_trips_through_parser(self):
        query = parse_cq("ans(x) :- E(x, y), x != 'a'")
        assert "E(x, y)" in str(query)

    def test_equality_helpers(self):
        eq = equality(var("x"), Constant(1))
        neq = inequality(var("x"), var("y"))
        assert not eq.negated and neq.negated


class TestComposition:
    def test_compose_register_with_inner_query(self, course_instance):
        outer = parse_cq("ans(c2) :- Reg(c1), prereq(c1, c2)")
        inner = parse_cq("ans(c) :- course(c, t, d), d = 'CS'")
        composed = outer.compose("Reg", inner)
        # Courses that are immediate prerequisites of a CS course.
        assert composed.evaluate(course_instance) == {("c1",)}

    def test_compose_arity_mismatch(self):
        outer = parse_cq("ans(x) :- Reg(x, y)")
        inner = parse_cq("ans(c) :- course(c, t, d)")
        with pytest.raises(ValueError):
            outer.compose("Reg", inner)

    def test_compose_missing_relation(self):
        outer = parse_cq("ans(x) :- E(x, y)")
        inner = parse_cq("ans(c) :- course(c, t, d)")
        with pytest.raises(ValueError):
            outer.compose("Reg", inner)

    def test_compose_preserves_semantics(self, course_instance):
        outer = parse_cq("ans(t) :- Reg(c), course(c, t, d)")
        inner = parse_cq("ans(c) :- prereq(x, c)")
        composed = outer.compose("Reg", inner)
        # Direct evaluation: titles of courses that are prerequisites of something.
        expected = {("Intro",)}
        assert composed.evaluate(course_instance) == expected

    def test_canonical_instance_satisfies_query(self, simple_schema):
        query = parse_cq("ans(c) :- course(c, t, d), d = 'CS'")
        frozen, valuation = query.canonical_instance(simple_schema)
        assert query.evaluate(frozen) != frozenset()
        assert valuation[var("d")] == "CS"

    def test_cq_to_formula_query_agrees(self, course_instance):
        query = parse_cq("ans(c) :- course(c, t, d), d = 'CS', c != 'c1'")
        assert cq_to_formula_query(query).evaluate(course_instance) == query.evaluate(course_instance)

    def test_register_atom_builder(self):
        assert register_atom(None, var("x")).relation == "Reg"
        assert register_atom("course", var("x")).relation == "Reg_course"


class TestParser:
    def test_parse_constants_and_numbers(self):
        query = parse_cq("ans(x) :- R(x, 'lit', 3, 2.5)")
        constants = query.constants()
        assert constants == {"lit", 3, 2.5}

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_cq("ans(x) :- R(x,")
        with pytest.raises(ParseError):
            parse_cq("ans('a') :- R(x)")
        with pytest.raises(ParseError):
            parse_cq("ans(x) :- R(x) extra")

    def test_parse_head_only(self):
        query = parse_cq("ans(x)")
        assert query.atoms == ()
