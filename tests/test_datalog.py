"""Tests for the Datalog substrate and the Theorem 3(2) translations."""

from __future__ import annotations

import pytest

from repro.core.relational_query import TransducerRelationalQuery, output_relation
from repro.datalog import (
    DatalogProgram,
    DatalogRule,
    FormulaCondition,
    deterministic_subprograms,
    evaluate_program,
    is_deterministic,
    is_linear,
    is_nonrecursive,
    lindatalog_to_transducer,
    transducer_to_lindatalog,
    unfold_to_cq,
)
from repro.datalog.translate import TranslationError
from repro.logic import parse_cq
from repro.logic.cq import RelationAtom
from repro.logic.fo import Not, Rel
from repro.logic.terms import Constant, Variable
from repro.workloads.random_instances import chain_instance, random_graph_instance
from repro.workloads.registrar import tau1_prerequisite_hierarchy, example_registrar_instance

x, y, z = Variable("x"), Variable("y"), Variable("z")


def transitive_closure_program() -> DatalogProgram:
    return DatalogProgram(
        [
            DatalogRule(RelationAtom("S", (x, y)), (RelationAtom("E", (x, y)),)),
            DatalogRule(
                RelationAtom("S", (x, y)),
                (RelationAtom("S", (x, z)), RelationAtom("E", (z, y))),
            ),
            DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("S", (x, y)),)),
        ]
    )


class TestEvaluation:
    def test_transitive_closure_on_chain(self):
        program = transitive_closure_program()
        instance = chain_instance(4)
        result = evaluate_program(program, instance)
        assert len(result) == 10  # all ordered pairs i < j over 5 nodes

    def test_facts_and_constants_in_heads(self):
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("ans", (Constant("seed"),)), ()),
                DatalogRule(RelationAtom("ans", (x,)), (RelationAtom("E", (x, x)),)),
            ]
        )
        instance = chain_instance(2)
        assert evaluate_program(program, instance) == {("seed",)}

    def test_inequality_in_body(self):
        program = DatalogProgram(
            [
                DatalogRule(
                    RelationAtom("ans", (x, y)),
                    (RelationAtom("E", (x, y)), parse_cq("ans(x, y) :- x != y").comparisons[0]),
                )
            ]
        )
        instance = chain_instance(3)
        assert len(evaluate_program(program, instance)) == 3

    def test_fo_condition_in_body(self):
        # ans(x, y) <- E(x, y), [not exists z E(y, z)]: edges into sinks.
        from repro.logic.fo import Exists

        condition = FormulaCondition(Not(Exists((z,), Rel("E", (y, z)))))
        program = DatalogProgram(
            [DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("E", (x, y)), condition))]
        )
        instance = chain_instance(3)
        assert evaluate_program(program, instance) == {("n2", "n3")}

    def test_evaluation_terminates_on_cycles(self):
        program = transitive_closure_program()
        instance = random_graph_instance(6, 12, seed=1)
        result = evaluate_program(program, instance)
        assert all(len(row) == 2 for row in result)


class TestStructuralChecks:
    def test_linearity(self):
        assert is_linear(transitive_closure_program())
        nonlinear = DatalogProgram(
            [
                DatalogRule(RelationAtom("S", (x, y)), (RelationAtom("E", (x, y)),)),
                DatalogRule(
                    RelationAtom("S", (x, y)),
                    (RelationAtom("S", (x, z)), RelationAtom("S", (z, y))),
                ),
                DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("S", (x, y)),)),
            ]
        )
        assert not is_linear(nonlinear)

    def test_recursion_detection(self):
        assert not is_nonrecursive(transitive_closure_program())
        flat = DatalogProgram(
            [DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("E", (x, y)),))]
        )
        assert is_nonrecursive(flat)

    def test_deterministic_subprograms(self):
        program = transitive_closure_program()
        subs = list(deterministic_subprograms(program))
        assert len(subs) == 2  # two rules for S, one for ans
        assert all(is_deterministic(sub) for sub in subs)

    def test_predicates(self):
        program = transitive_closure_program()
        assert program.idb_predicates() == {"S", "ans"}
        assert program.edb_predicates() == {"E"}
        assert program.predicate_arity("S") == 2


class TestUnfolding:
    def test_unfold_nonrecursive_deterministic(self):
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("P", (x, y)), (RelationAtom("E", (x, z)), RelationAtom("E", (z, y)))),
                DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("P", (x, z)), RelationAtom("E", (z, y)))),
            ]
        )
        query = unfold_to_cq(program)
        instance = chain_instance(4)
        assert query.evaluate(instance) == evaluate_program(program, instance)

    def test_unfold_rejects_recursive(self):
        with pytest.raises(ValueError):
            unfold_to_cq(transitive_closure_program())

    def test_unfold_rejects_nondeterministic(self):
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("ans", (x,)), (RelationAtom("E", (x, y)),)),
                DatalogRule(RelationAtom("ans", (x,)), (RelationAtom("E", (y, x)),)),
            ]
        )
        with pytest.raises(ValueError):
            unfold_to_cq(program)


class TestTheorem3Translations:
    def test_transducer_to_lindatalog_is_linear(self):
        program = transducer_to_lindatalog(tau1_prerequisite_hierarchy(), "course")
        assert is_linear(program)

    def test_transducer_to_lindatalog_agrees(self):
        transducer = tau1_prerequisite_hierarchy()
        instance = example_registrar_instance()
        program = transducer_to_lindatalog(transducer, "course")
        assert evaluate_program(program, instance) == output_relation(transducer, instance, "course")

    def test_lindatalog_to_transducer_agrees(self):
        program = transitive_closure_program()
        transducer = lindatalog_to_transducer(program)
        for seed in range(3):
            instance = random_graph_instance(5, 8, seed=seed)
            assert output_relation(transducer, instance, "ao") == evaluate_program(program, instance)

    def test_round_trip_through_both_translations(self):
        program = transitive_closure_program()
        transducer = lindatalog_to_transducer(program)
        back = transducer_to_lindatalog(transducer, "ao")
        instance = chain_instance(3)
        assert evaluate_program(back, instance) == evaluate_program(program, instance)

    def test_translation_rejects_fo_transducer(self, tau3):
        with pytest.raises(TranslationError):
            transducer_to_lindatalog(tau3, "course")

    def test_translation_rejects_relation_registers(self):
        from repro.workloads.blowup import binary_counter_transducer

        with pytest.raises(TranslationError):
            transducer_to_lindatalog(binary_counter_transducer(), "a")

    def test_normal_form_required(self):
        bad = DatalogProgram(
            [
                DatalogRule(RelationAtom("S", (x,)), (RelationAtom("E", (x, y)),)),
                DatalogRule(RelationAtom("T", (x,)), (RelationAtom("S", (x,)),)),
                DatalogRule(RelationAtom("ans", (x,)), (RelationAtom("T", (x,)),)),
            ]
        )
        with pytest.raises(TranslationError):
            lindatalog_to_transducer(bad)

    def test_transducer_relational_query_adapter(self):
        transducer = tau1_prerequisite_hierarchy()
        adapter = TransducerRelationalQuery(transducer, "course")
        instance = example_registrar_instance()
        assert adapter.evaluate(instance) == output_relation(transducer, instance, "course")
        assert adapter.arity == 2
