"""Tests for the lower-bound reductions of Section 5."""

from __future__ import annotations

import pytest

from repro.analysis import is_empty
from repro.analysis.reductions import (
    CnfFormula,
    ExistsForallFormula,
    Literal,
    TwoRegisterMachine,
    cnf,
    exists_forall_sat_membership_gadget,
    fo_equivalence_emptiness_gadget,
    fo_equivalence_equivalence_gadget,
    fo_equivalence_membership_gadget,
    three_sat_emptiness_gadget,
    three_sat_witness_instance,
    two_register_machine_gadget,
)
from repro.core import classify, publish
from repro.logic.fo import Eq, Exists, FormulaQuery, Rel
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.xmltree.tree import tree

x, y = Variable("x"), Variable("y")


class TestThreeSatGadget:
    @pytest.mark.parametrize(
        "formula, satisfiable",
        [
            (cnf(2, [[(0, True), (1, True)]]), True),
            (cnf(1, [[(0, True)], [(0, False)]]), False),
            (cnf(3, [[(0, True), (1, False), (2, True)], [(0, False), (1, True), (2, False)]]), True),
            (cnf(2, [[(0, True)], [(0, False)], [(1, True)]]), False),
        ],
    )
    def test_emptiness_decides_satisfiability(self, formula: CnfFormula, satisfiable: bool):
        gadget = three_sat_emptiness_gadget(formula)
        assert str(classify(gadget)) == "PTnr(CQ, tuple, virtual)"
        assert is_empty(gadget).empty is (not satisfiable)
        assert formula.is_satisfiable_bruteforce() is satisfiable

    def test_witness_instance_produces_nontrivial_tree(self):
        formula = cnf(2, [[(0, True), (1, True)]])
        gadget = three_sat_emptiness_gadget(formula)
        witness = three_sat_witness_instance(formula, (1, 0))
        output = publish(gadget, witness)
        assert output.size() > 1
        non_satisfying = three_sat_witness_instance(cnf(1, [[(0, True)]]), (0,))
        gadget_one = three_sat_emptiness_gadget(cnf(1, [[(0, True)]]))
        assert publish(gadget_one, non_satisfying) == tree("r")


class TestProposition2Gadgets:
    @pytest.fixture
    def equivalent_pair(self):
        q1 = FormulaQuery((x,), Exists((y,), Rel("E", (x, y))))
        q2 = FormulaQuery((x,), Exists((y,), Rel("E", (x, y))))
        return q1, q2

    @pytest.fixture
    def inequivalent_pair(self):
        q1 = FormulaQuery((x,), Exists((y,), Rel("E", (x, y))))
        q2 = FormulaQuery((x,), Exists((y,), Rel("E", (y, x))))
        return q1, q2

    @pytest.fixture
    def graph(self):
        schema = RelationalSchema.from_arities({"E": 2})
        return Instance(schema, {"E": [("a", "b")]})

    def test_emptiness_gadget_behaviour(self, equivalent_pair, inequivalent_pair, graph):
        same = fo_equivalence_emptiness_gadget(*equivalent_pair)
        different = fo_equivalence_emptiness_gadget(*inequivalent_pair)
        # For equivalent queries the gadget's output stays trivial on every instance.
        assert publish(same, graph) == tree("r")
        # For inequivalent queries some instance yields a non-trivial tree.
        assert publish(different, graph) != tree("r")

    def test_membership_gadget_behaviour(self, inequivalent_pair, graph):
        gadget, target = fo_equivalence_membership_gadget(*inequivalent_pair)
        assert publish(gadget, graph) == target

    def test_equivalence_gadget_behaviour(self, equivalent_pair, inequivalent_pair, graph):
        same_left, same_right = fo_equivalence_equivalence_gadget(*equivalent_pair)
        assert publish(same_left, graph) == publish(same_right, graph)
        diff_left, diff_right = fo_equivalence_equivalence_gadget(*inequivalent_pair)
        assert publish(diff_left, graph) != publish(diff_right, graph)


class TestExistsForallGadget:
    def test_construction_classifies_correctly(self):
        formula = ExistsForallFormula(
            existential=1,
            universal=1,
            clauses=(
                (Literal(0, True), Literal(1, True)),
                (Literal(0, True), Literal(1, False)),
            ),
        )
        gadget, target = exists_forall_sat_membership_gadget(formula)
        assert str(classify(gadget)) == "PTnr(CQ, tuple, normal)"
        assert target == tree("r", "b", "d")
        assert formula.evaluate_bruteforce()

    def test_intended_instance_reproduces_target_iff_true(self):
        # phi = exists y . forall z . (y | z) & (y | !z)  -- true with y = 1.
        formula = ExistsForallFormula(
            existential=1,
            universal=1,
            clauses=((Literal(0, True), Literal(1, True)), (Literal(0, True), Literal(1, False))),
        )
        gadget, target = exists_forall_sat_membership_gadget(formula)
        schema = RelationalSchema.from_arities({"RC": 1, "ROR": 3})
        intended = Instance(
            schema,
            {
                "RC": [(0,), (1,)],
                "ROR": [(0, 0, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)],
            },
        )
        assert publish(gadget, intended) == target


class TestTwoRegisterMachineGadget:
    def test_reference_simulation(self):
        halting = TwoRegisterMachine(instructions=(("add", 1, 1), ("sub", 1, 2, 1)), halting_state=2)
        assert not halting.runs_forever()
        looping = TwoRegisterMachine(instructions=(("add", 1, 0),), halting_state=5)
        assert looping.runs_forever(max_steps=200)

    def test_gadget_construction(self):
        machine = TwoRegisterMachine(instructions=(("add", 1, 1), ("sub", 1, 2, 1)), halting_state=2)
        tau1, tau2 = two_register_machine_gadget(machine)
        assert str(classify(tau1)) == "PT(CQ, tuple, normal)"
        assert str(classify(tau2)) == "PT(CQ, tuple, normal)"
        # Both simulate runs over the same 6-ary schema.
        assert tau1.source_relation_names() == {"R"} == tau2.source_relation_names()
