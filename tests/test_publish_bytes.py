"""The bytes-native publish path (`repro.engine.emit`).

The contract under test is the acceptance bar of the serialization PR:

* ``publish_bytes`` / ``publish(output="bytes"|"compact")`` is byte-identical
  to the established serialisers (``to_xml`` / ``to_compact_xml`` /
  ``IncrementalXmlSerializer``) on every backend x maintenance x output
  combination, including escaping edge cases and republish chains;
* the bytes path never constructs a ``TreeNode``;
* rendered-span cache hits surface through ``stats()`` / ``explain()``;
* the node budget charges exactly as tree mode (same minimal budget);
* the recursive serialisers are now iterative and survive
  Proposition-1-depth trees.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.runtime import TransformationLimitError
from repro.engine import compile_plan, transducer
from repro.logic.cq import ConjunctiveQuery, RelationAtom
from repro.logic.terms import Variable
from repro.relational.columnar import ensure_encoded
from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.serve import BACKENDS, MAINTENANCE, ViewServer
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.serialize import IncrementalXmlSerializer, to_compact_xml, to_xml
from repro.xmltree.tree import TreeNode


def _fresh_document(tau, instance, indent=2):
    """The oracle document: a fresh plan's materialised tree, serialised."""
    tree = compile_plan(tau).publish(instance)
    return to_xml(tree, indent=indent) if indent is not None else to_compact_xml(tree)


def _workloads():
    registrar = generate_registrar_instance(15, max_prereqs=2, seed=11, cycle_fraction=0.1)
    return [
        ("tau1", tau1_prerequisite_hierarchy(), registrar),
        ("tau2", tau2_prerequisite_closure(), registrar),
        ("tau3", tau3_courses_without_db_prereq(), registrar),
        ("diamonds", chain_of_diamonds_transducer(), chain_of_diamonds_instance(4)),
        ("counter", binary_counter_transducer(), binary_counter_instance(2)),
    ]


ALL_COMBOS = tuple(itertools.product(BACKENDS, MAINTENANCE, ("bytes", "compact")))


# ---------------------------------------------------------------------------
# Byte identity across every routing combination.
# ---------------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("backend,maintenance,output", ALL_COMBOS)
    def test_all_workloads_all_combos(self, backend, maintenance, output):
        for name, tau, instance in _workloads():
            expected = _fresh_document(
                tau, instance, indent=2 if output == "bytes" else None
            )
            server = ViewServer()
            server.register_view(name, tau)
            server.attach(instance, name="src")
            produced = server.publish(
                name, output=output, backend=backend, maintenance=maintenance
            )
            assert produced == expected, (name, backend, maintenance, output)
            # A second publish serves from the rendered-span cache; the
            # bytes must not change.
            assert server.publish(
                name, output=output, backend=backend, maintenance=maintenance
            ) == expected

    @pytest.mark.parametrize("indent", [0, 2, 4, None])
    def test_indent_variants_match_serializers(self, indent):
        tau = tau1_prerequisite_hierarchy()
        instance = generate_registrar_instance(10, seed=5)
        plan = compile_plan(tau)
        tree = compile_plan(tau).publish(instance)
        expected = to_compact_xml(tree) if indent is None else to_xml(tree, indent=indent)
        assert plan.publish_bytes(instance, indent=indent) == expected
        # and again from the warm cache
        assert plan.publish_bytes(instance, indent=indent) == expected

    def test_matches_incremental_event_serializer(self):
        for name, tau, instance in _workloads():
            plan = compile_plan(tau)
            streamed = IncrementalXmlSerializer(indent=2).feed_all(
                plan.publish_events(instance)
            ).finish()
            assert compile_plan(tau).publish_bytes(instance, indent=2) == streamed, name

    def test_encoded_instances_match_row_instances(self):
        for name, tau, instance in _workloads():
            row_doc = compile_plan(tau).publish_bytes(instance)
            ensure_encoded(instance)  # in place; the content is unchanged
            assert compile_plan(tau).publish_bytes(instance) == row_doc, name


# ---------------------------------------------------------------------------
# Escaping edge cases: the interned fragments must escape exactly like the
# tree serialisers escape.
# ---------------------------------------------------------------------------

_NASTY_VALUES = (
    "&",
    "<tag>",
    "a&b<c>d",
    'he said "hi"',
    "it's",
    "héllo wörld ☃",
    "line\nbreak",
    "\ttab",
    "",
    True,
    False,
    42,
    -7,
    3.5,
)


def _escape_case():
    schema = RelationalSchema.from_attributes({"P": ("v",)})
    instance = Instance(schema, {"P": [(value,) for value in _NASTY_VALUES]})
    x = Variable("x")
    phi = ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))
    copy = ConjunctiveQuery((x,), (RelationAtom("Reg_item", (x,)),))
    tau = (
        transducer("esc", root="r")
        .start()
        .emit("q", "item", phi)
        .state("q")
        .on("item")
        .emit_text(copy)
        .build()
    )
    return tau, instance


class TestEscaping:
    @pytest.mark.parametrize("encoded", [False, True])
    @pytest.mark.parametrize("indent", [2, None])
    def test_nasty_character_data(self, encoded, indent):
        tau, instance = _escape_case()
        if encoded:
            ensure_encoded(instance)
        expected = _fresh_document(tau, instance, indent=indent)
        produced = compile_plan(tau).publish_bytes(instance, indent=indent)
        assert produced == expected
        for value in ("&amp;", "&lt;tag&gt;", "true", "false", "42", "3.5"):
            assert value in produced
        assert "<tag>" not in produced

    def test_relation_register_join_escapes_identically(self):
        # Relation-valued registers render "; "-joined rows; escaping the
        # join must equal joining the escaped parts (tau2 exercises this).
        tau = tau2_prerequisite_closure()
        instance = generate_registrar_instance(12, seed=2)
        assert compile_plan(tau).publish_bytes(instance) == _fresh_document(tau, instance)


# ---------------------------------------------------------------------------
# Republish chains: incremental bytes vs the full-render oracle.
# ---------------------------------------------------------------------------


class TestRepublishChains:
    @pytest.mark.parametrize("encoded", [False, True])
    def test_delta_chain_matches_full_render(self, encoded):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(
            generate_registrar_instance(12, max_prereqs=2, seed=7),
            name="reg",
            encoded=encoded,
        )
        deltas = [
            Delta.insert("course", ("cs901", "Fancy Topics", "CS")),
            Delta.insert("prereq", ("cs901", "cs1")),
            Delta(
                inserted={
                    "course": {("cs902", "Fancier Topics", "CS")},
                    "prereq": {("cs902", "cs901")},
                }
            ),
            Delta.delete("prereq", ("cs901", "cs1")),
            Delta.delete("course", ("cs901", "Fancy Topics", "CS")),
        ]
        for delta in deltas:
            handle.commit(delta)
            for output, indent in (("bytes", 2), ("compact", None)):
                produced = server.publish(
                    "tau1", output=output, maintenance="incremental"
                )
                assert produced == _fresh_document(tau, handle.instance, indent=indent)

    def test_republish_reuses_rendered_spans(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(
            generate_registrar_instance(30, max_prereqs=2, seed=13),
            name="reg",
            encoded=True,
        )
        server.publish("tau1", output="bytes", maintenance="incremental")
        handle.commit(Delta.insert("course", ("cs999", "New Course", "CS")))
        server.publish("tau1", output="bytes", maintenance="incremental")
        cache = server.stats().as_dict()["views"][0]["cache"]
        assert cache["rendered_hits"] > 0
        assert cache["rendered_misses"] > 0


# ---------------------------------------------------------------------------
# No tree materialisation on the bytes path.
# ---------------------------------------------------------------------------


class TestNoTreeMaterialisation:
    def test_bytes_output_builds_no_tree_nodes(self, monkeypatch):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        server.attach(generate_registrar_instance(10, seed=3), name="reg")
        constructed = []
        original = TreeNode.__post_init__

        def probe(node):
            constructed.append(node)
            original(node)

        monkeypatch.setattr(TreeNode, "__post_init__", probe)
        cold = server.publish("tau1", output="bytes")
        hot = server.publish("tau1", output="bytes")
        compact = server.publish("tau1", output="compact")
        assert cold == hot and cold and compact
        assert constructed == []
        # The probe itself works: a tree publish does build nodes.
        server.publish("tau1", output="tree")
        assert constructed


# ---------------------------------------------------------------------------
# Observability: render-cache counters through stats() and explain().
# ---------------------------------------------------------------------------


class TestRenderCacheStats:
    def test_counters_surface_in_stats_and_explain(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        server.attach(generate_registrar_instance(10, seed=4), name="reg")
        first = server.publish("tau1", output="bytes")
        assert server.publish("tau1", output="bytes") == first
        stats = server.stats()
        cache = stats.as_dict()["views"][0]["cache"]
        assert cache["rendered_misses"] > 0
        assert cache["rendered_hits"] > 0  # the second publish is a cache hit
        assert "rendered spans" in stats.describe()
        report = server.explain("tau1")
        assert report.as_dict()["cache"]["rendered_hits"] == cache["rendered_hits"]
        assert "render cache:" in report.describe()


# ---------------------------------------------------------------------------
# Iterative serialisers on Proposition-1-depth trees.
# ---------------------------------------------------------------------------


class TestDeepTrees:
    def _chain(self, depth: int) -> TreeNode:
        node = TreeNode("a")
        for _ in range(depth):
            node = TreeNode("a", (node,))
        return node

    def test_to_xml_survives_deep_chains(self):
        depth = 5000  # far beyond the default recursion limit
        document = to_xml(self._chain(depth))
        lines = document.split("\n")
        assert len(lines) == 2 * depth + 1
        assert lines[0] == "<a>" and lines[-1] == "</a>"
        assert lines[depth] == " " * (2 * depth) + "<a/>"

    def test_to_compact_xml_survives_deep_chains(self):
        depth = 5000
        assert to_compact_xml(self._chain(depth)) == (
            "<a>" * depth + "<a/>" + "</a>" * depth
        )


# ---------------------------------------------------------------------------
# Degenerate roots fall back to the event serialiser, errors included.
# ---------------------------------------------------------------------------


class TestDegenerateRoots:
    def test_virtual_roots_are_rejected_at_definition(self):
        # The fallback branch of the bytes driver also guards virtual roots,
        # but the transducer layer already forbids them outright.
        from repro.core.transducer import TransducerDefinitionError

        x = Variable("x")
        phi = ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))
        builder = transducer("vroot", root="v")
        builder.virtual("v")
        builder.start().emit("q", "a", phi)
        builder.state("q").on("a").leaf()
        with pytest.raises(TransducerDefinitionError, match="root tag cannot be virtual"):
            builder.build()

    def test_text_root_keeps_the_event_serializer_semantics(self):
        # A text root is constructible; the bytes path must surface the
        # event serialiser's document-rule error, message included.
        from repro.core.rules import TransductionRule
        from repro.core.transducer import make_transducer
        from repro.xmltree.tree import TEXT_TAG

        tau = make_transducer(
            [TransductionRule("q0", TEXT_TAG, ())], start_state="q0", root_tag=TEXT_TAG
        )
        schema = RelationalSchema.from_attributes({"P": ("v",)})
        instance = Instance(schema, {"P": [("p1",)]})
        with pytest.raises(ValueError, match="outside the document root"):
            compile_plan(tau).publish_bytes(instance)


# ---------------------------------------------------------------------------
# The write= contract and budget parity with tree mode.
# ---------------------------------------------------------------------------


class TestContracts:
    def test_write_sink_returns_empty_string(self):
        tau = tau1_prerequisite_hierarchy()
        instance = generate_registrar_instance(8, seed=6)
        plan = compile_plan(tau)
        document = plan.publish_bytes(instance)
        chunks: list[str] = []
        assert plan.publish_bytes(instance, write=chunks.append) == ""
        assert "".join(chunks) == document

    def test_budget_parity_with_tree_mode(self):
        instance = binary_counter_instance(2)

        def minimal_budget(publish) -> int:
            low, high = 1, 2000
            while low < high:
                mid = (low + high) // 2
                plan = compile_plan(binary_counter_transducer(), max_nodes=mid)
                try:
                    publish(plan)
                except TransformationLimitError:
                    low = mid + 1
                else:
                    high = mid
            return low

        tree_minimum = minimal_budget(lambda plan: plan.publish(instance))
        bytes_minimum = minimal_budget(lambda plan: plan.publish_bytes(instance))
        assert bytes_minimum == tree_minimum
        with pytest.raises(TransformationLimitError):
            compile_plan(
                binary_counter_transducer(), max_nodes=tree_minimum - 1
            ).publish_bytes(instance)
