"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.workloads.blowup import (
    binary_counter_instance,
    chain_of_diamonds_instance,
    expected_minimum_output_size_doubly_exponential,
    expected_minimum_output_size_exponential,
)
from repro.workloads.random_instances import (
    chain_instance,
    layered_dag_instance,
    random_graph_instance,
    random_unary_binary_instance,
)
from repro.workloads.registrar import (
    cs_course_numbers,
    example_registrar_instance,
    generate_registrar_instance,
)


class TestRegistrarGenerator:
    def test_example_instance_shape(self):
        instance = example_registrar_instance()
        assert instance.schema.arity("course") == 3
        assert len(instance["course"]) == 8
        assert ("cs240", "cs101") in instance["prereq"]

    def test_generated_instance_is_deterministic(self):
        first = generate_registrar_instance(20, seed=5)
        second = generate_registrar_instance(20, seed=5)
        assert first == second

    def test_generated_instance_size(self):
        instance = generate_registrar_instance(30, max_prereqs=2, seed=1)
        assert len(instance["course"]) == 30
        assert len(instance["prereq"]) <= 2 * 30

    def test_prerequisites_point_backwards_without_cycles(self):
        instance = generate_registrar_instance(25, cycle_fraction=0.0, seed=2)
        order = {row[0]: index for index, row in enumerate(sorted(instance["course"]))}
        assert all(order[a] > order[b] for a, b in instance["prereq"])

    def test_cycle_fraction_introduces_cycles(self):
        instance = generate_registrar_instance(10, cycle_fraction=1.0, seed=3)
        edges = instance["prereq"].tuples
        assert any((b, a) in edges for a, b in edges)

    def test_cs_course_numbers_helper(self):
        instance = example_registrar_instance()
        assert "math101" not in cs_course_numbers(instance)

    def test_depth_layering(self):
        instance = generate_registrar_instance(30, depth=3, seed=4)
        assert len(instance["course"]) == 30


class TestBlowupFamilies:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_chain_of_diamonds_size_is_linear(self, n):
        assert chain_of_diamonds_instance(n).total_size() == 4 * n

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_counter_instance_size_is_linear(self, n):
        instance = binary_counter_instance(n)
        assert len(instance["counter"]) == n
        assert len(instance["next"]) == n
        assert len(instance["add"]) == 8

    def test_expected_bounds(self):
        assert expected_minimum_output_size_exponential(5) == 32
        assert expected_minimum_output_size_doubly_exponential(2) == 16


class TestRandomInstances:
    def test_random_graph_size(self):
        instance = random_graph_instance(10, 20, seed=0)
        assert len(instance["E"]) <= 20
        assert len(instance.active_domain()) <= 10

    def test_chain_instance(self):
        instance = chain_instance(4)
        assert len(instance["E"]) == 4

    def test_layered_dag(self):
        instance = layered_dag_instance(3, 2, seed=0)
        assert all(src.startswith("v0") or src.startswith("v1") for src, _ in instance["E"])

    def test_unary_binary_instance(self):
        instance = random_unary_binary_instance(5, ("P", "Q"), ("E",), seed=1)
        assert instance.schema.arity("P") == 1
        assert instance.schema.arity("E") == 2
