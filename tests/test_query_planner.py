"""Differential and property tests for the repro.query planner.

The planner must agree with the naive active-domain evaluators -- which stay
in the tree as the executable specification -- on every range-restricted
query, and fall back to them (with identical results) on unsafe ones.  The
random generators below exercise joins, repeated variables, constants in
atoms, (in)equalities, negation and empty relations against both oracles.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog import (
    evaluate_all_predicates,
    evaluate_all_predicates_naive,
    evaluate_program,
    evaluate_program_naive,
)
from repro.datalog.program import DatalogProgram, DatalogRule
from repro.logic.cq import (
    ConjunctiveQuery,
    RelationAtom,
    UnionOfConjunctiveQueries,
    equality,
    inequality,
)
from repro.logic.fo import And, Eq, Exists, FormulaQuery, Not, Or, Rel
from repro.logic.terms import Constant, Variable
from repro.query import AntiJoinNode, JoinNode, ScanNode, plan_query
from repro.relational.instance import Instance, Relation
from repro.relational.schema import RelationalSchema
from repro.workloads.random_instances import (
    random_graph_instance,
    random_unary_binary_instance,
)
from repro.workloads.registrar import example_registrar_instance

V = [Variable(f"v{i}") for i in range(6)]
CONSTS = ["d0", "d1", "d2", "n1", "n2"]


def random_instances():
    """A mixed bag of small instances, including empty relations."""
    instances = [
        random_unary_binary_instance(5, seed=seed, density=0.4) for seed in range(4)
    ]
    instances += [random_graph_instance(6, 10, seed=seed) for seed in range(2)]
    # Empty relations, declared via an explicit schema.
    schema = RelationalSchema.from_arities({"P": 1, "E": 2})
    instances.append(Instance(schema, {}))
    instances.append(Instance(schema, {"P": [("d0",)]}))
    return instances


def random_safe_cq(rng: random.Random) -> ConjunctiveQuery:
    """A random CQ whose head and comparison variables are atom-bound."""
    atoms = []
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.5:
            terms = [
                rng.choice(V[:4]) if rng.random() < 0.8 else Constant(rng.choice(CONSTS))
                for _ in range(2)
            ]
            atoms.append(RelationAtom("E", tuple(terms)))
        else:
            term = rng.choice(V[:4]) if rng.random() < 0.8 else Constant(rng.choice(CONSTS))
            atoms.append(RelationAtom("P", (term,)))
    bound = sorted({v for atom in atoms for v in atom.variables()}, key=lambda v: v.name)
    if not bound:
        bound = [V[0]]
        atoms.append(RelationAtom("P", (V[0],)))
    head = tuple(rng.choice(bound) for _ in range(rng.randint(1, 2)))
    comparisons = []
    for _ in range(rng.randint(0, 2)):
        left = rng.choice(bound)
        right = rng.choice(bound) if rng.random() < 0.5 else Constant(rng.choice(CONSTS))
        maker = equality if rng.random() < 0.6 else inequality
        comparisons.append(maker(left, right))
    return ConjunctiveQuery(head, tuple(atoms), tuple(comparisons))


class TestCqDifferential:
    def test_random_safe_cqs_match_naive(self):
        rng = random.Random(7)
        instances = random_instances()
        planned = 0
        for _ in range(120):
            query = random_safe_cq(rng)
            plan = plan_query(query)
            assert plan is not None, f"safe CQ not planned: {query}"
            planned += 1
            for instance in instances:
                assert plan.execute(instance) == query.evaluate_naive(instance), (
                    f"{query} diverges on {instance}"
                )
        assert planned == 120

    def test_unsafe_cq_falls_back_to_naive(self):
        x, y = V[0], V[1]
        # y ranges over the active domain: genuinely unsafe.
        query = ConjunctiveQuery((x, y), (RelationAtom("P", (x,)),), (inequality(x, y),))
        assert plan_query(query) is None
        for instance in random_instances():
            assert query.evaluate(instance) == query.evaluate_naive(instance)

    def test_repeated_variables_in_atom(self):
        x = V[0]
        query = ConjunctiveQuery((x,), (RelationAtom("E", (x, x)),))
        plan = plan_query(query)
        assert plan is not None
        instance = random_graph_instance(5, 12, seed=3)
        loops = frozenset((a,) for a, b in instance["E"] if a == b)
        assert plan.execute(instance) == query.evaluate_naive(instance) == loops

    def test_constants_in_atoms_use_index_scan(self):
        x = V[0]
        instance = random_graph_instance(6, 12, seed=1)
        some_node = next(iter(instance["E"]))[0]
        query = ConjunctiveQuery((x,), (RelationAtom("E", (Constant(some_node), x)),))
        plan = plan_query(query)
        assert plan is not None
        assert "IndexScan" in plan.explain()
        assert plan.execute(instance) == query.evaluate_naive(instance)

    def test_equality_forced_constants_are_pushed_down(self):
        x, y = V[0], V[1]
        query = ConjunctiveQuery(
            (x, y),
            (RelationAtom("E", (x, y)),),
            (equality(x, Constant("n1")),),
        )
        plan = plan_query(query)
        assert "IndexScan" in plan.explain()
        for instance in random_instances():
            assert plan.execute(instance) == query.evaluate_naive(instance)

    def test_empty_and_unknown_relations(self):
        x, y = V[0], V[1]
        schema = RelationalSchema.from_arities({"P": 1, "E": 2})
        empty = Instance(schema, {})
        join = ConjunctiveQuery((x,), (RelationAtom("P", (x,)), RelationAtom("E", (x, y))))
        assert join.evaluate(empty) == join.evaluate_naive(empty) == frozenset()
        unknown = ConjunctiveQuery((x,), (RelationAtom("Missing", (x,)),))
        assert unknown.evaluate(empty) == unknown.evaluate_naive(empty) == frozenset()

    def test_contradictory_equalities_give_empty_plan(self):
        x = V[0]
        query = ConjunctiveQuery(
            (x,),
            (RelationAtom("P", (x,)),),
            (equality(x, Constant("a")), equality(x, Constant("b"))),
        )
        plan = plan_query(query)
        assert plan is not None
        for instance in random_instances():
            assert plan.execute(instance) == query.evaluate_naive(instance) == frozenset()

    def test_ucq_union_plan(self):
        x, y = V[0], V[1]
        q1 = ConjunctiveQuery((x,), (RelationAtom("E", (x, y)),))
        q2 = ConjunctiveQuery((y,), (RelationAtom("E", (x, y)),))
        union = UnionOfConjunctiveQueries((q1, q2))
        plan = plan_query(union)
        assert plan is not None
        for instance in random_instances():
            assert plan.execute(instance) == union.evaluate_naive(instance)


class TestFoDifferential:
    def _formulas(self):
        x, y, z = V[0], V[1], V[2]
        return [
            FormulaQuery((x,), Rel("P", (x,))),
            FormulaQuery((x,), Exists((y,), And((Rel("E", (x, y)), Rel("P", (y,)))))),
            FormulaQuery((x,), Or((Rel("P", (x,)), Exists((y,), Rel("E", (x, y)))))),
            # Safe negation: an anti-join, never a domain complement.
            FormulaQuery((x,), And((Rel("P", (x,)), Not(Exists((y,), Rel("E", (x, y))))))),
            FormulaQuery(
                (x, y),
                And((Rel("E", (x, y)), Not(Rel("E", (y, x))))),
            ),
            FormulaQuery(
                (x,),
                Exists((y,), And((Rel("E", (x, y)), Eq(y, Constant("n2"))))),
            ),
            FormulaQuery(
                (x, y),
                And((Rel("E", (x, y)), Not(Eq(x, y)))),
            ),
            # Equality propagation: z is copied from x, not cylindrified.
            FormulaQuery(
                (x, z),
                And((Rel("P", (x,)), Eq(z, x))),
            ),
        ]

    def test_safe_formulas_match_naive(self):
        instances = random_instances()
        for query in self._formulas():
            plan = plan_query(query)
            assert plan is not None, f"safe formula not planned: {query}"
            for instance in instances:
                assert plan.execute(instance) == query.evaluate_naive(instance), str(query)

    def test_random_formulas_match_naive(self):
        from repro.logic.fo import FalseFormula, TrueFormula

        rng = random.Random(42)
        rels = [("P", 1), ("E", 2)]

        def rterm():
            return rng.choice(V[:4]) if rng.random() < 0.75 else Constant(rng.choice(CONSTS))

        def rand_formula(depth):
            roll = rng.random()
            if depth <= 0 or roll < 0.35:
                name, arity = rng.choice(rels)
                return Rel(name, tuple(rterm() for _ in range(arity)))
            if roll < 0.45:
                return Eq(rterm(), rterm())
            if roll < 0.6:
                return And(tuple(rand_formula(depth - 1) for _ in range(rng.randint(2, 3))))
            if roll < 0.72:
                return Or(tuple(rand_formula(depth - 1) for _ in range(2)))
            if roll < 0.84:
                return Exists((rng.choice(V[:4]),), rand_formula(depth - 1))
            if roll < 0.94:
                return Not(rand_formula(depth - 1))
            return rng.choice([TrueFormula(), FalseFormula()])

        instances = random_instances()
        planned = 0
        for _ in range(150):
            formula = rand_formula(3)
            free = sorted(formula.free_variables(), key=lambda v: v.name)
            query = FormulaQuery(tuple(free[:2]), formula)
            plan = plan_query(query)
            if plan is None:
                continue  # outside the safe fragment: covered by fallback tests
            planned += 1
            for instance in instances:
                assert plan.execute(instance) == query.evaluate_naive(instance), str(query)
        # The generator must actually exercise the planner, not skip everything.
        assert planned >= 50

    def test_negation_plans_as_anti_join(self):
        x, y = V[0], V[1]
        query = FormulaQuery(
            (x,), And((Rel("P", (x,)), Not(Exists((y,), Rel("E", (x, y))))))
        )
        plan = plan_query(query)
        assert any(isinstance(node, AntiJoinNode) for node in plan.walk())

    def test_empty_disjunction_plans_as_empty(self):
        x, y = V[0], V[1]
        instance = random_unary_binary_instance(4, seed=1)
        for query in (
            FormulaQuery((), Or(())),
            FormulaQuery((x,), And((Rel("E", (x, y)), Or(())))),
            FormulaQuery((), Exists((x,), Or(()))),
        ):
            assert query.evaluate(instance) == query.evaluate_naive(instance) == frozenset()

    def test_unsafe_formulas_fall_back(self):
        x, y = V[0], V[1]
        unsafe = [
            FormulaQuery((x,), Not(Rel("P", (x,)))),  # top-level negation
            FormulaQuery((x, y), Eq(x, y)),  # domain diagonal
            FormulaQuery((x,), Or((Rel("P", (x,)), Eq(y, Constant("d0"))))),
        ]
        for query in unsafe:
            assert plan_query(query) is None
            instance = random_unary_binary_instance(4, seed=9)
            assert query.evaluate(instance) == query.evaluate_naive(instance)

    def test_registrar_rule_queries_match_naive(self):
        from repro.workloads.registrar import (
            tau1_prerequisite_hierarchy,
            tau2_prerequisite_closure,
            tau3_courses_without_db_prereq,
        )

        instance = example_registrar_instance()
        for tau in (
            tau1_prerequisite_hierarchy(),
            tau2_prerequisite_closure(),
            tau3_courses_without_db_prereq(),
        ):
            extended = instance.extended(
                {"Reg": [("cs450", "Databases")], "Reg_course": [("cs450", "Databases")]}
            )
            for rule in tau.rules:
                for item in rule.items:
                    query = item.query.query
                    assert query.evaluate(extended) == query.evaluate_naive(extended), (
                        f"{tau.name}: {query}"
                    )


class TestExplain:
    def test_explain_shows_join_order_and_operators(self):
        cp, c, t, d = Variable("cp"), Variable("c"), Variable("t"), Variable("d")
        query = ConjunctiveQuery(
            (c, t),
            (
                RelationAtom("Reg_prereq", (cp,)),
                RelationAtom("prereq", (cp, c)),
                RelationAtom("course", (c, t, d)),
            ),
        )
        plan = plan_query(query)
        text = plan.explain()
        assert "join order:" in text
        assert "HashJoin" in text
        assert plan.join_order() == ("Reg_prereq", "prereq", "course")
        counts = plan.operator_counts()
        assert counts["Scan"] == 3
        assert counts["Join"] == 2

    def test_executions_counter(self):
        x = V[0]
        query = ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))
        plan = plan_query(query)
        before = plan.executions
        query.evaluate(random_unary_binary_instance(3, seed=0))
        # evaluate() reuses the cached plan object.
        assert plan_query(query) is plan
        assert plan.executions == before + 1


class TestDatalogSemiNaive:
    def _transitive_closure(self) -> DatalogProgram:
        x, y, z = V[0], V[1], V[2]
        return DatalogProgram(
            [
                DatalogRule(RelationAtom("tc", (x, y)), (RelationAtom("E", (x, y)),)),
                DatalogRule(
                    RelationAtom("tc", (x, y)),
                    (RelationAtom("tc", (x, z)), RelationAtom("E", (z, y))),
                ),
                DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("tc", (x, y)),)),
            ]
        )

    def test_transitive_closure_matches_naive(self):
        program = self._transitive_closure()
        for seed in range(4):
            instance = random_graph_instance(7, 14, seed=seed)
            assert evaluate_program(program, instance) == evaluate_program_naive(
                program, instance
            )

    def test_all_predicates_match_naive_with_nonlinear_rules(self):
        x, y, z = V[0], V[1], V[2]
        # Non-linear recursion: two IDB atoms in one body (two delta plans).
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("p", (x, y)), (RelationAtom("E", (x, y)),)),
                DatalogRule(
                    RelationAtom("p", (x, y)),
                    (RelationAtom("p", (x, z)), RelationAtom("p", (z, y))),
                ),
                DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("p", (x, y)),)),
            ]
        )
        for seed in range(3):
            instance = random_graph_instance(6, 10, seed=seed)
            assert evaluate_all_predicates(program, instance) == (
                evaluate_all_predicates_naive(program, instance)
            )

    def test_constants_and_inequalities_in_rules(self):
        x, y = V[0], V[1]
        program = DatalogProgram(
            [
                DatalogRule(
                    RelationAtom("r", (x, y)),
                    (RelationAtom("E", (x, y)), inequality(x, y)),
                ),
                DatalogRule(
                    RelationAtom("ans", (y,)),
                    (RelationAtom("r", (Constant("n0"), y)),),
                ),
            ]
        )
        for seed in range(3):
            instance = random_graph_instance(5, 10, seed=seed)
            assert evaluate_program(program, instance) == evaluate_program_naive(
                program, instance
            )

    def test_edb_relation_named_like_the_delta_channel(self):
        # An EDB predicate literally called __delta__ must not be shadowed by
        # the semi-naive delta feed; the evaluator picks a fresh channel name.
        x, y, z = V[0], V[1], V[2]
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("p", (x, y)), (RelationAtom("E", (x, y)),)),
                DatalogRule(
                    RelationAtom("p", (x, y)),
                    (RelationAtom("p", (x, z)), RelationAtom("__delta__", (z, y))),
                ),
            ],
            output_predicate="p",
        )
        instance = Instance(
            RelationalSchema.from_arities({"E": 2, "__delta__": 2}),
            {"E": [("a", "b")], "__delta__": [("b", "c"), ("c", "d")]},
        )
        assert evaluate_all_predicates(program, instance) == (
            evaluate_all_predicates_naive(program, instance)
        )

    def test_max_iterations_truncates_like_naive(self):
        program = self._transitive_closure()
        from repro.workloads.random_instances import chain_instance

        instance = chain_instance(6)
        for budget in (0, 1, 2, 3):
            assert evaluate_program(program, instance, max_iterations=budget) == (
                evaluate_program_naive(program, instance, max_iterations=budget)
            )


class TestRelationFastPaths:
    def test_union_reuses_objects(self):
        left = Relation("R", 2, [("a", "b"), ("c", "d")])
        empty = Relation("R", 2)
        subset = Relation("R", 2, [("a", "b")])
        assert left.union(empty) is left
        assert left.union(subset) is left
        assert empty.union(left) is left
        merged = left.union(Relation("R", 2, [("x", "y")]))
        assert merged.tuples == left.tuples | {("x", "y")}

    def test_hash_index_is_cached_and_correct(self):
        relation = Relation("E", 2, [("a", "b"), ("a", "c"), ("b", "c")])
        index = relation.hash_index((0,))
        assert sorted(index[("a",)]) == [("a", "b"), ("a", "c")]
        assert relation.hash_index((0,)) is index

    def test_instance_updated_and_extended_share_relations(self):
        instance = example_registrar_instance()
        updated = instance.updated("prereq", [("cs240", "cs101")])
        assert updated["course"] is instance["course"]
        assert updated["prereq"].tuples == frozenset({("cs240", "cs101")})
        extended = instance.extended({"Reg": [("cs450",)]})
        assert extended["course"] is instance["course"]
        assert extended["prereq"] is instance["prereq"]
        assert extended["Reg"].tuples == frozenset({("cs450",)})


class TestAnalysisIntegration:
    def test_emptiness_witness_instance_verifies(self):
        from repro.analysis import is_empty
        from repro.core.rules import RuleItem, RuleQuery, TransductionRule
        from repro.core.transducer import make_transducer
        from repro.logic import parse_cq

        query = parse_cq("ans(x) :- R(x, y)")
        tau = make_transducer(
            [
                TransductionRule(
                    "q0", "r", (RuleItem("q", "a", RuleQuery(query, query.arity)),)
                ),
                TransductionRule("q", "a", ()),
            ],
            start_state="q0",
            root_tag="r",
        )
        result = is_empty(tau)
        assert not result.empty
        assert result.witness_instance is not None
        assert result.witness_query.evaluate(result.witness_instance)

    def test_membership_exhaustive_still_finds_witness(self):
        from repro.analysis import is_member
        from repro.core.rules import RuleItem, RuleQuery, TransductionRule
        from repro.core.transducer import make_transducer
        from repro.logic import parse_cq
        from repro.xmltree.tree import tree

        query = parse_cq("ans(x) :- R(x)")
        tau = make_transducer(
            [
                TransductionRule(
                    "q0", "r", (RuleItem("q", "a", RuleQuery(query, query.arity)),)
                ),
                TransductionRule("q", "a", ()),
            ],
            start_state="q0",
            root_tag="r",
        )
        verdict = is_member(tau, tree("r", "a"), exhaustive=True)
        assert verdict.is_member
        assert verdict.witness is not None
