"""Guard: ``src/repro`` must import nothing outside the standard library.

The whole point of the network tier (and the repo) is that it runs on a
bare Python install -- no aiohttp, no websockets, no msgpack.  This test
AST-walks every module under ``src/repro`` and asserts that every top-level
import root is either a stdlib module or ``repro`` itself, so a stray
third-party dependency fails CI before it fails a user.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

ALLOWED_ROOTS = set(sys.stdlib_module_names) | {"repro"}


def _import_roots(path: Path):
    """Yield ``(lineno, root_module)`` for every import in one file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: stays inside repro
                continue
            if node.module:
                yield node.lineno, node.module.split(".")[0]


def test_src_repro_is_stdlib_only():
    offenders = []
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources found under {SRC}"
    for path in files:
        for lineno, root in _import_roots(path):
            if root not in ALLOWED_ROOTS:
                offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {root}")
    assert not offenders, "non-stdlib imports found:\n" + "\n".join(offenders)


def test_net_tier_modules_import_cleanly():
    # the tier most tempted by third-party helpers actually imports
    import repro.serve.net  # noqa: F401
    import repro.serve.net.app  # noqa: F401
    import repro.serve.net.client  # noqa: F401
    import repro.serve.net.protocol  # noqa: F401
    import repro.serve.net.wal  # noqa: F401
    import repro.relational.wire  # noqa: F401


def test_typecheck_modules_import_cleanly():
    import repro.typecheck  # noqa: F401
    import repro.typecheck.static  # noqa: F401
    import repro.typecheck.streaming  # noqa: F401
