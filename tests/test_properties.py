"""Property-based tests (hypothesis) for the core invariants of the paper.

* Proposition 1(1): every transformation terminates and is deterministic.
* Monotonicity of CQ transducers (used implicitly throughout Section 5/6).
* The implicit domain order is a total order.
* CQ satisfiability agrees with evaluability on the canonical instance.
* Virtual-node elimination never leaves a virtual tag and never changes the
  induced relational query (Theorem 3(1)).
* The Theorem 3(2) translation agrees with the transducer on random inputs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import publish
from repro.core.relational_query import output_relation
from repro.datalog import evaluate_program, transducer_to_lindatalog
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality, inequality
from repro.logic.terms import Constant, Variable
from repro.relational.domain import order_key, sort_tuples
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.workloads.blowup import GRAPH_SCHEMA, chain_of_diamonds_transducer
from repro.workloads.registrar import REGISTRAR_SCHEMA, tau1_prerequisite_hierarchy

# -- strategies -------------------------------------------------------------

values = st.one_of(st.integers(-3, 3), st.sampled_from(["a", "b", "c", "x"]))

edges = st.lists(st.tuples(st.sampled_from("abcde"), st.sampled_from("abcde")), max_size=12)

course_rows = st.lists(
    st.tuples(
        st.sampled_from(["c1", "c2", "c3", "c4"]),
        st.sampled_from(["T1", "T2"]),
        st.sampled_from(["CS", "Math"]),
    ),
    max_size=6,
    unique_by=lambda row: row[0],
)

prereq_rows = st.lists(
    st.tuples(st.sampled_from(["c1", "c2", "c3", "c4"]), st.sampled_from(["c1", "c2", "c3", "c4"])),
    max_size=8,
)


def graph_instance(edge_list) -> Instance:
    return Instance(GRAPH_SCHEMA, {"R": edge_list})


def registrar(courses, prereqs) -> Instance:
    cnos = {row[0] for row in courses}
    pruned = [(a, b) for a, b in prereqs if a in cnos and b in cnos]
    return Instance(REGISTRAR_SCHEMA, {"course": courses, "prereq": pruned})


# -- the properties -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(values, max_size=8))
def test_order_key_is_a_total_order(items):
    ordered = sorted(items, key=order_key)
    keys = [order_key(v) for v in ordered]
    assert keys == sorted(keys)
    assert sorted(items, key=order_key) == sorted(reversed(items), key=order_key)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(values, values), max_size=8))
def test_tuple_sort_is_deterministic(rows):
    assert sort_tuples(rows) == sort_tuples(list(reversed(rows)))


@settings(max_examples=25, deadline=None)
@given(edges)
def test_transformation_terminates_and_is_deterministic(edge_list):
    transducer = chain_of_diamonds_transducer()
    instance = graph_instance(edge_list)
    first = publish(transducer, instance, max_nodes=50_000)
    second = publish(transducer, instance, max_nodes=50_000)
    assert first == second
    assert first.label == "r"


@settings(max_examples=20, deadline=None)
@given(courses=course_rows, prereqs=prereq_rows)
def test_tau1_terminates_on_arbitrary_registrar_data(courses, prereqs):
    instance = registrar(courses, prereqs)
    output = publish(tau1_prerequisite_hierarchy(), instance, max_nodes=50_000)
    assert output.label == "db"
    # Proposition 1(1): the output is unique, hence re-running gives the same tree.
    assert output == publish(tau1_prerequisite_hierarchy(), instance, max_nodes=50_000)


@settings(max_examples=20, deadline=None)
@given(edges, edges)
def test_cq_transducers_are_monotone_as_relational_queries(first_edges, second_edges):
    """Adding tuples never removes answers of a CQ transducer's output relation."""
    transducer = chain_of_diamonds_transducer()
    small = graph_instance(first_edges)
    large = graph_instance(first_edges + second_edges)
    small_relation = output_relation(transducer, small, "a", max_nodes=50_000)
    large_relation = output_relation(transducer, large, "a", max_nodes=50_000)
    assert small_relation <= large_relation


@settings(max_examples=25, deadline=None)
@given(edges)
def test_lindatalog_translation_agrees_on_random_graphs(edge_list):
    transducer = chain_of_diamonds_transducer()
    instance = graph_instance(edge_list)
    program = transducer_to_lindatalog(transducer, "a")
    assert evaluate_program(program, instance) == output_relation(
        transducer, instance, "a", max_nodes=50_000
    )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=3, unique=True),
    st.lists(st.tuples(st.sampled_from(["x", "y", "z"]), values), max_size=3),
    st.lists(st.tuples(st.sampled_from(["x", "y", "z"]), values), max_size=2),
)
def test_cq_satisfiability_matches_canonical_evaluation(head_names, eqs, neqs):
    """A satisfiable CQ has a non-empty canonical instance evaluation, and an
    unsatisfiable one evaluates to the empty set on every instance."""
    head = tuple(Variable(name) for name in head_names)
    atom_vars = tuple(Variable(name) for name in ("x", "y", "z"))
    query = ConjunctiveQuery(
        head,
        (RelationAtom("R", atom_vars),),
        tuple(equality(Variable(v), Constant(c)) for v, c in eqs)
        + tuple(inequality(Variable(v), Constant(c)) for v, c in neqs),
    )
    schema = RelationalSchema.from_arities({"R": 3})
    if query.is_satisfiable():
        frozen, _ = query.canonical_instance(schema)
        assert query.evaluate(frozen)
    else:
        frozen, _ = ConjunctiveQuery(head, (RelationAtom("R", atom_vars),), ()).canonical_instance(schema)
        assert query.evaluate(frozen) == frozenset()


@settings(max_examples=20, deadline=None)
@given(courses=course_rows, prereqs=prereq_rows)
def test_virtual_elimination_leaves_no_virtual_tags(courses, prereqs):
    from repro.workloads.registrar import tau2_prerequisite_closure

    instance = registrar(courses, prereqs)
    transducer = tau2_prerequisite_closure()
    output = publish(transducer, instance, max_nodes=50_000)
    assert not (output.labels() & transducer.virtual_tags)
