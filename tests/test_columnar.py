"""Differential and byte-identity tests for the columnar execution kernel.

The dictionary-encoded, vectorized backend of :mod:`repro.query.vectorized`
must be observationally invisible: on every query and every instance it has
to produce exactly the answers of the row backend and of the naive
active-domain evaluators, and the publishing engine's encoded register
pipeline has to serialise byte-identical XML.  The tests here drive all
three comparisons over random CQ/UCQ/FO queries, random instances, the
registrar views tau1--tau3 and the Proposition 1 blow-up workloads, plus
delta maintenance (``execute_delta`` and ``republish``) on encoded
lineages.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog import (
    evaluate_all_predicates,
    evaluate_program,
    evaluate_program_naive,
)
from repro.datalog.program import DatalogProgram, DatalogRule
from repro.engine.plan import compile_plan
from repro.incremental import IncrementalPublisher
from repro.logic.cq import (
    ConjunctiveQuery,
    RelationAtom,
    UnionOfConjunctiveQueries,
    equality,
    inequality,
)
from repro.logic.fo import And, Eq, Exists, FormulaQuery, Not, Or, Rel
from repro.logic.terms import Constant, Variable
from repro.query import plan_query
from repro.relational import (
    ColumnarRelation,
    Delta,
    DictionaryEncoder,
    Instance,
    Relation,
    encoding_of,
    ensure_encoded,
)
from repro.relational.schema import RelationalSchema
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.random_instances import (
    layered_dag_instance,
    random_graph_instance,
    random_unary_binary_instance,
)
from repro.workloads.registrar import (
    example_registrar_instance,
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.diff import trees_equal

V = [Variable(f"v{i}") for i in range(6)]
CONSTS = ["d0", "d1", "d2", "n1", "n2"]


def encoded_twin(instance: Instance) -> Instance:
    """A value-identical instance carrying a dictionary encoding."""
    twin = Instance(instance.schema, {name: instance[name].tuples for name in instance})
    ensure_encoded(twin)
    return twin


def paired_instances():
    """(plain, encoded) twins over a mixed bag of small instances."""
    plain = [
        random_unary_binary_instance(5, seed=seed, density=0.4) for seed in range(4)
    ]
    plain += [random_graph_instance(6, 10, seed=seed) for seed in range(2)]
    schema = RelationalSchema.from_arities({"P": 1, "E": 2})
    plain.append(Instance(schema, {}))
    plain.append(Instance(schema, {"P": [("d0",)]}))
    return [(instance, encoded_twin(instance)) for instance in plain]


def random_safe_cq(rng: random.Random) -> ConjunctiveQuery:
    """A random CQ whose head and comparison variables are atom-bound."""
    atoms = []
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.5:
            terms = [
                rng.choice(V[:4]) if rng.random() < 0.8 else Constant(rng.choice(CONSTS))
                for _ in range(2)
            ]
            atoms.append(RelationAtom("E", tuple(terms)))
        else:
            term = rng.choice(V[:4]) if rng.random() < 0.8 else Constant(rng.choice(CONSTS))
            atoms.append(RelationAtom("P", (term,)))
    bound = sorted({v for atom in atoms for v in atom.variables()}, key=lambda v: v.name)
    if not bound:
        bound = [V[0]]
        atoms.append(RelationAtom("P", (V[0],)))
    head = tuple(rng.choice(bound) for _ in range(rng.randint(1, 2)))
    comparisons = []
    for _ in range(rng.randint(0, 2)):
        left = rng.choice(bound)
        right = rng.choice(bound) if rng.random() < 0.5 else Constant(rng.choice(CONSTS))
        maker = equality if rng.random() < 0.6 else inequality
        comparisons.append(maker(left, right))
    return ConjunctiveQuery(head, tuple(atoms), tuple(comparisons))


class TestEncoderAndColumns:
    def test_intern_is_stable_and_dense(self):
        encoder = DictionaryEncoder()
        a = encoder.intern("x")
        b = encoder.intern("y")
        assert (a, b) == (0, 1)
        assert encoder.intern("x") == a
        assert encoder.decode_row((b, a)) == ("y", "x")
        assert len(encoder) == 2

    def test_columns_cached_on_relation_object(self):
        encoder = DictionaryEncoder()
        relation = Relation("E", 2, [("a", "b"), ("b", "c")])
        columnar = encoder.columns_for(relation)
        assert encoder.columns_for(relation) is columnar
        assert isinstance(columnar, ColumnarRelation)
        assert columnar.num_rows == 2
        decoded = {
            (encoder.values[columnar.columns[0][i]], encoder.values[columnar.columns[1][i]])
            for i in range(columnar.num_rows)
        }
        assert decoded == {("a", "b"), ("b", "c")}

    def test_columnar_index_and_unique_index(self):
        encoder = DictionaryEncoder()
        relation = Relation("E", 2, [("a", "b"), ("a", "c"), ("b", "c")])
        columnar = encoder.columns_for(relation)
        index = columnar.index((0,))
        a = encoder.intern("a")
        assert sorted(len(bucket) for bucket in index.values()) == [1, 2]
        assert len(index[a]) == 2
        assert columnar.unique_index((0,)) is None  # "a" occurs twice
        assert columnar.unique_index((0, 1)) is not None  # full row is a key
        stats = columnar.index_stats()
        assert stats["built"] >= 2 and stats["cached"] >= 2

    def test_encoding_propagates_through_versions(self):
        instance = example_registrar_instance()
        encoder = ensure_encoded(instance)
        assert encoding_of(instance) is encoder
        assert ensure_encoded(instance) is encoder  # idempotent
        updated = instance.apply_delta(Delta.insert("prereq", ("cs450", "cs101")))
        assert encoding_of(updated) is encoder
        # Untouched relations share their columnar form by identity.
        assert updated["course"] is instance["course"]
        reverted = updated.apply_delta(Delta.delete("prereq", ("cs450", "cs101")))
        assert encoding_of(reverted) is encoder
        assert encoding_of(instance.updated("prereq", [("a", "b")])) is encoder
        assert encoding_of(instance.extended({"Extra": [("x",)]})) is encoder

    def test_overlays_do_not_inherit_the_encoding(self):
        instance = example_registrar_instance()
        ensure_encoded(instance)
        overlay = instance.overlaid({"Reg": Relation("Reg", 1, [("cs101",)])})
        assert encoding_of(overlay) is None


class TestCqDifferential:
    def test_random_cqs_columnar_vs_row_vs_naive(self):
        rng = random.Random(7)
        pairs = paired_instances()
        checked = 0
        for _ in range(120):
            query = random_safe_cq(rng)
            plan = plan_query(query)
            assert plan is not None
            for plain, encoded in pairs:
                row = plan.execute(plain)
                assert plan.last_backend == "row"
                columnar = plan.execute(encoded)
                assert plan.last_backend == "columnar"
                naive = query.evaluate_naive(plain)
                assert row == columnar == naive, f"{query} diverges"
                checked += 1
        assert checked == 120 * len(pairs)

    def test_random_ucqs_columnar_vs_row(self):
        rng = random.Random(13)
        pairs = paired_instances()
        planned = 0
        for _ in range(40):
            disjuncts = []
            head_width = rng.randint(1, 2)
            for _ in range(rng.randint(2, 3)):
                cq = random_safe_cq(rng)
                disjuncts.append(cq.with_head(tuple(cq.head[:1]) * head_width))
            query = UnionOfConjunctiveQueries(tuple(disjuncts))
            plan = plan_query(query)
            if plan is None:
                continue
            planned += 1
            for plain, encoded in pairs:
                assert plan.execute(plain) == plan.execute(encoded), str(query)
        assert planned >= 20

    def test_repeated_variables_and_constants(self):
        x = V[0]
        pairs = paired_instances()
        queries = [
            ConjunctiveQuery((x,), (RelationAtom("E", (x, x)),)),
            ConjunctiveQuery((x,), (RelationAtom("E", (Constant("n1"), x)),)),
            ConjunctiveQuery(
                (x,), (RelationAtom("E", (x, x)),), (equality(x, Constant("n2")),)
            ),
            # A constant the encoder has never seen.
            ConjunctiveQuery((x,), (RelationAtom("E", (Constant("never-seen"), x)),)),
            ConjunctiveQuery(
                (x,), (RelationAtom("P", (x,)),), (inequality(x, Constant("never-seen")),)
            ),
        ]
        for query in queries:
            plan = plan_query(query)
            for plain, encoded in pairs:
                assert plan.execute(plain) == plan.execute(encoded), str(query)

    def test_overrides_reach_the_columnar_kernel(self):
        x, y = V[0], V[1]
        query = ConjunctiveQuery((x, y), (RelationAtom("E", (x, y)),))
        plan = plan_query(query)
        schema = RelationalSchema.from_arities({"E": 2})
        encoded = encoded_twin(Instance(schema, {"E": [("a", "b")]}))
        rows = plan.execute(encoded, {"E": {("fresh1", "fresh2")}})
        assert plan.last_backend == "columnar"
        assert rows == frozenset({("fresh1", "fresh2")})

    def test_explain_reports_the_backend(self):
        x, y = V[0], V[1]
        query = ConjunctiveQuery((x,), (RelationAtom("E", (x, y)),))
        plan = plan_query(query)
        assert "backend:" in plan.explain()
        plain = random_graph_instance(4, 6, seed=0)
        plan.execute(plain)
        assert "backend: row" in plan.explain()
        plan.execute(encoded_twin(plain))
        assert "backend: columnar" in plan.explain()


class TestFoDifferential:
    def _formulas(self):
        x, y, z = V[0], V[1], V[2]
        return [
            FormulaQuery((x,), Rel("P", (x,))),
            FormulaQuery((x,), Exists((y,), And((Rel("E", (x, y)), Rel("P", (y,)))))),
            FormulaQuery((x,), Or((Rel("P", (x,)), Exists((y,), Rel("E", (x, y)))))),
            FormulaQuery(
                (x,), And((Rel("P", (x,)), Not(Exists((y,), Rel("E", (x, y))))))
            ),
            FormulaQuery((x, y), And((Rel("E", (x, y)), Not(Rel("E", (y, x)))))),
            FormulaQuery(
                (x,), Exists((y,), And((Rel("E", (x, y)), Eq(y, Constant("n2")))))
            ),
            FormulaQuery((x, y), And((Rel("E", (x, y)), Not(Eq(x, y))))),
            FormulaQuery((x, z), And((Rel("P", (x,)), Eq(z, x)))),
        ]

    def test_safe_formulas_columnar_vs_row(self):
        pairs = paired_instances()
        for query in self._formulas():
            plan = plan_query(query)
            assert plan is not None
            for plain, encoded in pairs:
                row = plan.execute(plain)
                columnar = plan.execute(encoded)
                assert row == columnar == query.evaluate_naive(plain), str(query)

    def test_random_formulas_columnar_vs_row(self):
        from repro.logic.fo import FalseFormula, TrueFormula

        rng = random.Random(42)
        rels = [("P", 1), ("E", 2)]

        def rterm():
            return rng.choice(V[:4]) if rng.random() < 0.75 else Constant(rng.choice(CONSTS))

        def rand_formula(depth):
            roll = rng.random()
            if depth <= 0 or roll < 0.35:
                name, arity = rng.choice(rels)
                return Rel(name, tuple(rterm() for _ in range(arity)))
            if roll < 0.45:
                return Eq(rterm(), rterm())
            if roll < 0.6:
                return And(tuple(rand_formula(depth - 1) for _ in range(rng.randint(2, 3))))
            if roll < 0.72:
                return Or(tuple(rand_formula(depth - 1) for _ in range(2)))
            if roll < 0.84:
                return Exists((rng.choice(V[:4]),), rand_formula(depth - 1))
            if roll < 0.94:
                return Not(rand_formula(depth - 1))
            return rng.choice([TrueFormula(), FalseFormula()])

        pairs = paired_instances()
        planned = 0
        for _ in range(150):
            formula = rand_formula(3)
            free = sorted(formula.free_variables(), key=lambda v: v.name)
            query = FormulaQuery(tuple(free[:2]), formula)
            plan = plan_query(query)
            if plan is None:
                continue
            planned += 1
            for plain, encoded in pairs:
                assert plan.execute(plain) == plan.execute(encoded), str(query)
        assert planned >= 50


class TestDeltaMaintenance:
    def test_execute_delta_on_encoded_lineage(self):
        x, y, z = V[0], V[1], V[2]
        query = ConjunctiveQuery(
            (x, z), (RelationAtom("E", (x, y)), RelationAtom("E", (y, z)))
        )
        plan = plan_query(query)
        rng = random.Random(3)
        plain = random_graph_instance(6, 12, seed=5)
        encoded = encoded_twin(plain)
        for step in range(10):
            nodes = [f"n{i}" for i in range(6)]
            if rng.random() < 0.5:
                delta = Delta.insert("E", (rng.choice(nodes), rng.choice(nodes)))
            else:
                edges = sorted(encoded["E"])
                delta = (
                    Delta.delete("E", rng.choice(edges))
                    if edges
                    else Delta.insert("E", (nodes[0], nodes[1]))
                )
            prev = plan.execute(encoded)
            change = plan.execute_delta(encoded, delta)
            encoded = encoded.apply_delta(delta)
            assert encoding_of(encoded) is not None
            assert change.apply(prev) == plan.execute(encoded), f"step {step}"

    def test_datalog_fixpoint_columnar_vs_row_vs_naive(self):
        x, y, z = V[0], V[1], V[2]
        program = DatalogProgram(
            [
                DatalogRule(RelationAtom("tc", (x, y)), (RelationAtom("E", (x, y)),)),
                DatalogRule(
                    RelationAtom("tc", (x, y)),
                    (RelationAtom("tc", (x, z)), RelationAtom("E", (z, y))),
                ),
                DatalogRule(RelationAtom("ans", (x, y)), (RelationAtom("tc", (x, y)),)),
            ]
        )
        plain = layered_dag_instance(5, 4, seed=1)
        encoded = layered_dag_instance(5, 4, seed=1, encoded=True)
        assert encoding_of(encoded) is not None
        naive = evaluate_program_naive(program, plain)
        assert evaluate_program(program, plain) == naive
        assert evaluate_program(program, encoded) == naive
        assert evaluate_all_predicates(program, plain) == evaluate_all_predicates(
            program, encoded
        )


class TestPublishByteIdentity:
    def _registrar_instances(self):
        yield example_registrar_instance()
        yield generate_registrar_instance(30, max_prereqs=2, seed=3, cycle_fraction=0.1)

    @pytest.mark.parametrize(
        "make_tau",
        [
            tau1_prerequisite_hierarchy,
            tau2_prerequisite_closure,
            tau3_courses_without_db_prereq,
        ],
        ids=["tau1", "tau2", "tau3"],
    )
    def test_registrar_views_byte_identical(self, make_tau):
        tau = make_tau()
        for instance in self._registrar_instances():
            encoded = encoded_twin(instance)
            plain_plan = compile_plan(tau)
            encoded_plan = compile_plan(tau)
            assert plain_plan.publish_xml(instance) == encoded_plan.publish_xml(encoded)
            assert trees_equal(
                plain_plan.publish(instance), encoded_plan.publish(encoded)
            )
            # The interpreter-compatible result decodes its registers.
            full_plain = plain_plan.publish_full(instance)
            full_encoded = encoded_plan.publish_full(encoded)
            assert trees_equal(full_plain.tree, full_encoded.tree)
            def canonical(root):
                return sorted(
                    (n.state, n.tag, tuple(sorted(n.register))) for n in root.walk()
                )

            assert canonical(full_plain.extended_root) == canonical(
                full_encoded.extended_root
            )

    def test_blowup_workloads_byte_identical(self):
        cases = [
            (chain_of_diamonds_transducer(), chain_of_diamonds_instance(6), 100_000),
            (binary_counter_transducer(), binary_counter_instance(2), 100_000),
        ]
        for tau, instance, max_nodes in cases:
            encoded = encoded_twin(instance)
            plain_plan = compile_plan(tau, max_nodes=max_nodes)
            encoded_plan = compile_plan(tau, max_nodes=max_nodes)
            assert plain_plan.publish_xml(instance) == encoded_plan.publish_xml(encoded)

    def test_encoded_workload_constructors(self):
        assert encoding_of(generate_registrar_instance(10, seed=1, encoded=True))
        assert encoding_of(chain_of_diamonds_instance(3, encoded=True))
        assert encoding_of(binary_counter_instance(2, encoded=True))
        assert encoding_of(layered_dag_instance(3, 3, encoded=True))


class TestRepublishEncoded:
    def _random_delta(self, rng, instance):
        courses = sorted(row[0] for row in instance["course"])
        if rng.random() < 0.5:
            return Delta.insert("prereq", (rng.choice(courses), rng.choice(courses)))
        prereqs = sorted(instance["prereq"])
        if not prereqs:
            return Delta.insert("prereq", (courses[0], courses[-1]))
        return Delta.delete("prereq", rng.choice(prereqs))

    @pytest.mark.parametrize(
        "make_tau",
        [
            tau1_prerequisite_hierarchy,
            tau2_prerequisite_closure,
            tau3_courses_without_db_prereq,
        ],
        ids=["tau1", "tau2", "tau3"],
    )
    def test_republish_chain_matches_full_publish(self, make_tau):
        tau = make_tau()
        rng = random.Random(17)
        instance = generate_registrar_instance(18, max_prereqs=2, seed=6)
        encoded = encoded_twin(instance)
        plan = compile_plan(tau)
        oracle_plan = compile_plan(tau)
        result = None
        current = encoded
        for step in range(8):
            delta = self._random_delta(rng, current)
            result = plan.republish(result if result else current, delta)
            current = result.instance
            assert encoding_of(current) is encoding_of(encoded)
            oracle = oracle_plan.publish(
                Instance(current.schema, {n: current[n].tuples for n in current})
            )
            assert trees_equal(result.tree, oracle), f"{tau.name} step {step}"

    def test_republish_after_mid_lineage_ensure_encoded(self):
        """Encoding an instance between publish and republish must not
        migrate row-mode memo entries into the encoded pipeline."""
        tau = tau1_prerequisite_hierarchy()
        instance = example_registrar_instance()
        plan = compile_plan(tau)
        plan.publish(instance)  # row-mode state cached for this instance
        ensure_encoded(instance)  # representation changes mid-lineage
        delta = Delta.insert("prereq", ("cs450", "cs340"))
        result = plan.republish(instance, delta)
        oracle = compile_plan(tau).publish(
            Instance(
                result.instance.schema,
                {n: result.instance[n].tuples for n in result.instance},
            )
        )
        assert trees_equal(result.tree, oracle)

    def test_ensure_encoded_rejects_conflicting_encoder(self):
        instance = example_registrar_instance()
        encoder = ensure_encoded(instance)
        assert ensure_encoded(instance, encoder) is encoder
        with pytest.raises(ValueError):
            ensure_encoded(instance, DictionaryEncoder())

    def test_incremental_publisher_encoded_flag(self):
        instance = example_registrar_instance()
        publisher = IncrementalPublisher(
            tau1_prerequisite_hierarchy(), instance, encoded=True
        )
        assert encoding_of(publisher.instance) is not None
        publisher.insert("prereq", ("cs450", "cs340"))
        publisher.delete("prereq", ("cs240", "cs101"))
        publisher.verify()


class TestIndexHygiene:
    def test_hash_index_cap_and_stats(self):
        relation = Relation("R", 4, [(i, i + 1, i + 2, i + 3) for i in range(10)])
        seen = []
        cap = Relation.max_hash_indexes
        for i in range(cap + 3):
            positions = (i % 4, (i * 7 + 1) % 4, i % 3)
            relation.hash_index(positions)
            seen.append(positions)
        stats = relation.index_stats()
        assert stats["cached"] <= cap
        assert stats["built"] == len(set(seen))
        assert stats["evicted"] == stats["built"] - stats["cached"]
        assert stats["capacity"] == cap
        relation.clear_indexes()
        assert relation.index_stats()["cached"] == 0

    def test_hash_index_still_cached_and_correct(self):
        relation = Relation("E", 2, [("a", "b"), ("a", "c"), ("b", "c")])
        index = relation.hash_index((0,))
        assert relation.hash_index((0,)) is index
        assert sorted(index[("a",)]) == [("a", "b"), ("a", "c")]

    def test_columnar_index_cap(self):
        encoder = DictionaryEncoder()
        relation = Relation("R", 4, [(i, i + 1, i + 2, i + 3) for i in range(10)])
        columnar = encoder.columns_for(relation)
        for i in range(columnar.max_indexes + 3):
            columnar.index((i % 4, (i * 7 + 1) % 4, i % 3))
        stats = columnar.index_stats()
        assert stats["cached"] <= columnar.max_indexes

    def test_trusted_algebra_constructors_skip_revalidation(self):
        from repro.relational import algebra

        left = Relation("R", 2, [("a", "b"), ("b", "c")])
        right = Relation("S", 2, [("b", "c")])
        assert algebra.union(left, right).tuples == left.tuples
        assert algebra.rename(left, "T").tuples is left.tuples
        projected = algebra.projection(left, (1,))
        assert projected.tuples == frozenset({("b",), ("c",)})
