"""The serving layer: ViewServer, versioned sources, subscriptions, params.

The contract under test is the acceptance bar of the API redesign:

* ``server.publish`` output is byte-identical to the legacy ``publish_xml``
  path on tau1-tau3 and both blow-up workloads for every (backend,
  maintenance) combination, before and after commits;
* snapshot isolation: a reader pinned to version ``N`` is unaffected by
  commit ``N + 1``;
* subscription edit scripts replay to the full-publish oracle;
* parameterized views bind exactly like manually-substituted constants;
* the legacy entry points delegate and warn.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.engine.builder import TransducerBuilder
from repro.engine.plan import compile_plan
from repro.incremental import IncrementalPublisher
from repro.languages.common import element
from repro.languages.forxml import ForXmlView
from repro.languages.registry import compile_frontend, frontend_language
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.relational.columnar import encoding_of
from repro.relational.delta import Delta
from repro.relational.instance import Instance
from repro.serve import (
    BACKENDS,
    MAINTENANCE,
    ServeError,
    SourceHandle,
    SourceVersion,
    ViewServer,
    serialize_tree,
)
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    example_registrar_instance,
    registrar_view_suite,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.diff import trees_equal
from repro.xmltree.events import events_to_tree
from repro.xmltree.serialize import to_compact_xml, to_xml
from repro.xmltree.tree import TreeNode


def oracle_xml(transducer, instance: Instance) -> str:
    """The legacy-path document: a fresh compiled plan, serialised tree."""
    return serialize_tree(compile_plan(transducer).publish(instance))


ALL_COMBOS = tuple(itertools.product(BACKENDS, MAINTENANCE))


# ---------------------------------------------------------------------------
# Byte identity with the legacy path, across every routing combination.
# ---------------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("backend,maintenance", ALL_COMBOS)
    def test_registrar_views_all_combos(self, backend, maintenance):
        views = {
            "tau1": tau1_prerequisite_hierarchy(),
            "tau2": tau2_prerequisite_closure(),
            "tau3": tau3_courses_without_db_prereq(),
        }
        server = ViewServer()
        for name, tau in views.items():
            server.register_view(name, tau)
        handle = server.attach(example_registrar_instance())
        deltas = [
            Delta.insert("course", ("cs500", "Compilers", "CS")),
            Delta(
                inserted={"prereq": [("cs500", "cs340"), ("cs500", "cs450")]},
                deleted={"prereq": [("cs240", "cs101")]},
            ),
            Delta.delete("course", ("cs450", "Databases", "CS")),
        ]
        for name, tau in views.items():
            xml = server.publish(
                name, output="bytes", backend=backend, maintenance=maintenance
            )
            assert xml == oracle_xml(tau, handle.instance)
        for delta in deltas:
            handle.commit(delta)
            for name, tau in views.items():
                xml = server.publish(
                    name, output="bytes", backend=backend, maintenance=maintenance
                )
                assert xml == oracle_xml(tau, handle.instance)

    @pytest.mark.parametrize("backend,maintenance", ALL_COMBOS)
    def test_blowup_workloads_all_combos(self, backend, maintenance):
        server = ViewServer()
        server.register_view("diamonds", chain_of_diamonds_transducer())
        server.register_view("counter", binary_counter_transducer())
        diamonds = server.attach(chain_of_diamonds_instance(4), name="diamonds")
        counter = server.attach(binary_counter_instance(2), name="counter")

        xml = server.publish(
            "diamonds",
            source=diamonds,
            output="bytes",
            backend=backend,
            maintenance=maintenance,
        )
        assert xml == oracle_xml(chain_of_diamonds_transducer(), diamonds.instance)
        diamonds.commit(Delta.delete("R", ("b3_2", "a4")))
        xml = server.publish(
            "diamonds",
            source=diamonds,
            output="bytes",
            backend=backend,
            maintenance=maintenance,
        )
        assert xml == oracle_xml(chain_of_diamonds_transducer(), diamonds.instance)

        xml = server.publish(
            "counter",
            source=counter,
            output="bytes",
            backend=backend,
            maintenance=maintenance,
        )
        assert xml == oracle_xml(binary_counter_transducer(), counter.instance)

    def test_encoded_source_all_combos(self):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(example_registrar_instance(), encoded=True)
        assert encoding_of(handle.instance) is not None
        handle.commit(Delta.insert("prereq", ("cs452", "cs240")))
        for backend, maintenance in ALL_COMBOS:
            xml = server.publish(
                "tau1", output="bytes", backend=backend, maintenance=maintenance
            )
            assert xml == oracle_xml(tau, handle.instance.without_encoding())

    def test_output_forms_agree(self):
        tau = tau2_prerequisite_closure()
        server = ViewServer()
        server.register_view("tau2", tau)
        server.attach(example_registrar_instance())
        tree = server.publish("tau2")
        assert isinstance(tree, TreeNode)
        events = server.publish("tau2", output="events")
        assert trees_equal(events_to_tree(events), tree)
        assert server.publish("tau2", output="bytes") == to_xml(tree)
        assert server.publish("tau2", output="bytes", indent=None) == serialize_tree(
            tree, indent=None
        )
        assert server.publish("tau2", output="compact") == to_compact_xml(tree)
        chunks: list[str] = []
        assert server.publish("tau2", output="bytes", write=chunks.append) == ""
        assert "".join(chunks) == to_xml(tree)


# ---------------------------------------------------------------------------
# MVCC snapshots.
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_events_output_stays_lazy_under_auto_maintenance(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        server.attach(example_registrar_instance())
        events = server.publish("tau1", output="events")
        # No maintained chain was seeded just to answer a streaming request;
        # the events come straight from the lazy engine driver.  The same
        # holds for the serialised forms (bytes/compact stream through the
        # incremental serializer instead of materialising a tree).
        assert server._maintained == {}
        assert events_to_tree(events).label == "db"
        server.publish("tau1", output="bytes")
        server.publish("tau1", output="compact")
        assert server._maintained == {}
        server.publish("tau1")  # a tree request does seed the chain
        assert len(server._maintained) == 1

    def test_maintained_chains_are_lru_capped(self):
        server = ViewServer(maintained_views=2)
        server.register_view(
            "hierarchy", tau1_prerequisite_hierarchy, params=("department",)
        )
        server.attach(example_registrar_instance())
        for department in ("CS", "Math", "Physics", "EE"):
            server.publish(
                "hierarchy",
                params={"department": department},
                maintenance="incremental",
            )
        assert len(server._maintained) == 2

    def test_reader_on_old_version_is_unaffected_by_commits(self):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(example_registrar_instance())
        snapshot = handle.snapshot()
        frozen = server.publish("tau1", source=snapshot, output="bytes")
        handle.commit(Delta.insert("course", ("cs700", "Quantum", "CS")))
        handle.commit(Delta.delete("prereq", ("cs340", "cs240")))
        # The snapshot still reads version 0, in every backend/maintenance.
        for backend, maintenance in ALL_COMBOS:
            again = server.publish(
                "tau1",
                source=snapshot,
                output="bytes",
                backend=backend,
                maintenance=maintenance,
            )
            assert again == frozen
        # The latest version sees both commits.
        latest = server.publish("tau1", output="bytes")
        assert latest == oracle_xml(tau, handle.instance)
        assert latest != frozen

    def test_version_chain_addressing(self):
        server = ViewServer()
        server.register_view("tau3", tau3_courses_without_db_prereq())
        handle = server.attach(example_registrar_instance())
        v0 = handle.latest
        v1 = handle.commit(Delta.insert("course", ("cs800", "Logic", "CS")))
        assert (v0.index, v1.index, handle.version) == (0, 1, 1)
        assert handle.snapshot(0) is v0 and handle.snapshot(1) is v1
        assert handle.history() == (v0, v1)
        assert handle.commits == 1
        by_number = server.publish("tau3", source=handle, version=0, output="bytes")
        by_snapshot = server.publish("tau3", source=v0, output="bytes")
        assert by_number == by_snapshot
        with pytest.raises(ServeError):
            handle.snapshot(2)
        with pytest.raises(ServeError):
            server.publish("tau3", source=v0, version=1)

    def test_commit_normalizes_the_delta(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        version = handle.commit(
            Delta.insert("prereq", ("cs240", "cs101"))  # already present
        )
        assert version.delta.is_empty()
        assert version.instance is handle.snapshot(0).instance

    def test_old_versions_share_untouched_relations(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        v0 = handle.latest
        v1 = handle.commit(Delta.insert("prereq", ("cs610", "cs101")))
        assert v1.instance["course"] is v0.instance["course"]
        assert v1.instance["prereq"] is not v0.instance["prereq"]


# ---------------------------------------------------------------------------
# Subscriptions.
# ---------------------------------------------------------------------------


class TestSubscriptions:
    def test_edit_scripts_replay_to_the_full_publish_oracle(self):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau1")
        replayed = subscription.tree
        assert trees_equal(replayed, compile_plan(tau).publish(handle.instance))
        rng = random.Random(11)
        courses = [f"cs9{i:02d}" for i in range(6)]
        for step in range(10):
            if rng.random() < 0.6:
                cno = rng.choice(courses)
                delta = Delta(
                    inserted={
                        "course": [(cno, f"Title {step}", "CS")],
                        "prereq": [(cno, rng.choice(["cs101", "cs240", "cs340"]))],
                    }
                )
            else:
                victim = rng.choice(sorted(handle.instance["prereq"].tuples))
                delta = Delta.delete("prereq", victim)
            handle.commit(delta)
            event = subscription.pop()
            replayed = event.edits.apply(replayed)
            oracle = compile_plan(tau).publish(handle.instance)
            assert trees_equal(replayed, oracle)
            assert trees_equal(event.tree, oracle)
        assert subscription.version == handle.version == 10
        assert subscription.pending == 0

    def test_unaffecting_commit_delivers_an_empty_script(self):
        server = ViewServer()
        server.register_view("tau3", tau3_courses_without_db_prereq())
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau3")
        # tau3 is depth-two: prereqs of non-existent courses never show.
        handle.commit(Delta.insert("prereq", ("nope", "cs101")))
        event = subscription.pop()
        assert event.edits.is_empty()
        assert event.version == 1

    def test_multiple_subscriptions_and_close(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        first = server.subscribe("tau1")
        second = server.subscribe("tau1")
        handle.commit(Delta.insert("course", ("cs901", "Graphs", "CS")))
        assert first.pending == second.pending == 1
        first.close()
        handle.commit(Delta.insert("course", ("cs902", "Flows", "CS")))
        assert first.pending == 1  # nothing new after close
        assert [event.version for event in second.drain()] == [1, 2]
        assert server.stats().deliveries == 3

    def test_subscription_on_a_deep_spine(self):
        # A chain-unfold view whose output is deeper than the recursion
        # limit; the commit rewrites the bottom of every unfolded chain.
        # Exercises the equal-child-count fast path of diff_trees (the
        # prefix/suffix scan used to re-walk the spine per ancestor level).
        from repro.relational.schema import RelationalSchema

        x, y = Variable("x"), Variable("y")
        builder = TransducerBuilder("unfold", root="r", start="q0")
        builder.start().emit(
            "q", "a", ConjunctiveQuery((x,), (RelationAtom("E", (x, y)),))
        )
        builder.state("q").on("a").emit(
            "q",
            "a",
            ConjunctiveQuery(
                (x,), (RelationAtom("Reg_a", (y,)), RelationAtom("E", (y, x)))
            ),
        )
        n = 400
        instance = Instance(
            RelationalSchema.from_attributes({"E": ("s", "d")}),
            {"E": [(f"n{i}", f"n{i + 1}") for i in range(n)]},
        )
        server = ViewServer(max_nodes=10**7)
        server.register_view("deep", builder.build())
        handle = server.attach(instance)
        subscription = server.subscribe("deep")
        base = subscription.tree
        assert base.depth() > n
        handle.commit(Delta.delete("E", (f"n{n - 1}", f"n{n}")))
        event = subscription.pop()
        assert trees_equal(event.edits.apply(base), subscription.tree)
        assert trees_equal(
            subscription.tree,
            compile_plan(builder.build(), max_nodes=10**7).publish(handle.instance),
        )

    def test_subscribers_share_one_chain_per_key(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        subscriptions = [server.subscribe("tau1") for _ in range(3)]
        plan = server.view("tau1").plan_for(None)
        calls = []
        original = plan.republish

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        plan.republish = counting
        try:
            handle.commit(Delta.insert("course", ("cs980", "Shared", "CS")))
        finally:
            plan.republish = original
        # One republish serves every subscriber of the key.
        assert len(calls) == 1
        for subscription in subscriptions:
            event = subscription.pop()
            assert event.version == 1 and not event.edits.is_empty()
        first, second = subscriptions[0], subscriptions[1]
        assert first.tree is second.tree  # the shared chain's tree

    def test_prune_bounds_history_and_lagging_chains_reseed(self):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(example_registrar_instance())
        pinned = handle.snapshot()
        frozen = server.publish("tau1", source=pinned, output="bytes")
        # A maintained chain left behind at version 0 (no subscribers).
        server.publish("tau1", backend="row", maintenance="incremental")
        subscription = server.subscribe("tau1")
        handle.commit(Delta.insert("course", ("cs981", "Pruned A", "CS")))
        handle.commit(Delta.insert("course", ("cs982", "Pruned B", "CS")))
        assert handle.prune(keep_last=1) == 2
        assert len(handle.history()) == 1
        with pytest.raises(ServeError, match="pruned"):
            handle.snapshot(0)
        # The pinned version object still reads its own snapshot.
        assert server.publish("tau1", source=pinned, output="bytes") == frozen
        # The lagging chain reseeds across the pruned gap, byte-identically.
        assert server.publish(
            "tau1", backend="row", maintenance="incremental", output="bytes"
        ) == oracle_xml(tau, handle.instance)
        # The subscriber chain was advanced at commit time, before pruning.
        assert [event.version for event in subscription.drain()] == [1, 2]

    def test_pending_queue_is_bounded_with_a_dropped_counter(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau1", max_pending=3)
        for i in range(5):
            handle.commit(Delta.insert("course", (f"cs97{i}", f"Q{i}", "CS")))
        assert subscription.pending == 3
        assert subscription.dropped == 2
        # After an overflow the consumer resynchronises from the tree, which
        # is always the complete current document.
        oracle = compile_plan(tau1_prerequisite_hierarchy()).publish(handle.instance)
        assert trees_equal(subscription.tree, oracle)
        assert [event.version for event in subscription.drain()] == [3, 4, 5]

    def test_close_deregisters_from_server_and_handle(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau1")
        assert server.stats().subscriptions == 1
        subscription.close()
        assert server.subscriptions == ()
        assert server.stats().subscriptions == 0
        stats = {s.name: s for s in server.stats().sources}[handle.name]
        assert stats.subscriptions == 0

    def test_subscription_on_columnar_backend(self):
        tau = tau1_prerequisite_hierarchy()
        server = ViewServer()
        server.register_view("tau1", tau)
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau1", backend="columnar")
        assert encoding_of(subscription.instance) is not None
        handle.commit(Delta.insert("prereq", ("cs452", "cs450")))
        event = subscription.pop()
        assert trees_equal(event.tree, compile_plan(tau).publish(handle.instance))


# ---------------------------------------------------------------------------
# Parameterized views.
# ---------------------------------------------------------------------------


class TestParameterizedViews:
    def test_binding_equals_manual_constant_substitution(self):
        server = ViewServer()
        server.register_view(
            "hierarchy", tau1_prerequisite_hierarchy, params=("department",)
        )
        server.register_view(
            "no_db", tau3_courses_without_db_prereq, params=("banned_title",)
        )
        handle = server.attach(example_registrar_instance())
        for department in ("CS", "Math", "Physics"):
            bound = server.publish(
                "hierarchy", params={"department": department}, output="bytes"
            )
            manual = oracle_xml(
                tau1_prerequisite_hierarchy(department), handle.instance
            )
            assert bound == manual
        bound = server.publish(
            "no_db", params={"banned_title": "Data Structures"}, output="bytes"
        )
        manual = oracle_xml(
            tau3_courses_without_db_prereq("Data Structures"), handle.instance
        )
        assert bound == manual

    def test_bindings_compile_once_and_push_constants_into_scans(self):
        server = ViewServer()
        view = server.register_view(
            "hierarchy", tau1_prerequisite_hierarchy, params=("department",)
        )
        plan = view.plan_for({"department": "CS"})
        assert view.plan_for({"department": "CS"}) is plan
        assert view.plan_for({"department": "Math"}) is not plan
        assert len(view.plans) == 2
        # The bound constant reaches the scan level: the start rule's plan
        # scans `course` with the department selection pushed down.
        start_plans = [
            qp for state, tag, _, qp in plan.rule_plans() if state == "q0" and qp
        ]
        assert any("course" in qp.stats()["join_order"] for qp in start_plans)

    def test_suite_registration_and_incremental_params(self):
        server = ViewServer()
        for name, (factory, params) in registrar_view_suite().items():
            server.register_view(name, factory, params=params)
        handle = server.attach(example_registrar_instance())
        before = server.publish(
            "closure",
            params={"department": "CS"},
            output="bytes",
            maintenance="incremental",
        )
        assert before == oracle_xml(tau2_prerequisite_closure("CS"), handle.instance)
        handle.commit(Delta.insert("prereq", ("cs450", "cs340")))
        after = server.publish(
            "closure",
            params={"department": "CS"},
            output="bytes",
            maintenance="incremental",
        )
        assert after == oracle_xml(tau2_prerequisite_closure("CS"), handle.instance)

    def test_binding_validation(self):
        server = ViewServer()
        server.register_view(
            "hierarchy", tau1_prerequisite_hierarchy, params=("department",)
        )
        with pytest.raises(ServeError, match="needs parameter"):
            server.publish("hierarchy")
        with pytest.raises(ServeError, match="does not declare"):
            server.publish(
                "hierarchy", params={"department": "CS", "bogus": 1}
            )
        # A non-callable source for a parameterized view fails at
        # registration time, not at first publish.
        with pytest.raises(ServeError, match="factory callable"):
            server.register_view(
                "built", tau1_prerequisite_hierarchy(), params=("department",)
            )

    def test_binding_plan_cache_is_lru_capped(self):
        server = ViewServer()
        view = server.register_view(
            "hierarchy", tau1_prerequisite_hierarchy, params=("department",)
        )
        view.max_bindings = 2
        handle = server.attach(example_registrar_instance())
        for department in ("CS", "Math", "Physics"):
            server.publish("hierarchy", params={"department": department})
        assert len(view.plans) == 2
        # Evicted bindings recompile on demand and stay correct.
        assert server.publish(
            "hierarchy", params={"department": "CS"}, output="bytes"
        ) == oracle_xml(tau1_prerequisite_hierarchy("CS"), handle.instance)


# ---------------------------------------------------------------------------
# Registration of every front-end kind.
# ---------------------------------------------------------------------------


class TestRegistration:
    def _forxml_view(self) -> ForXmlView:
        cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
        cs_courses = ConjunctiveQuery(
            (cno, title),
            (RelationAtom("course", (cno, title, dept)),),
            (equality(dept, Constant("CS")),),
        )
        return ForXmlView("db", (element("course", cs_courses),), name="cs-courses")

    def test_accepts_transducer_builder_frontend_plan_and_factory(self):
        instance = example_registrar_instance()
        frontend = self._forxml_view()
        transducer = compile_frontend(frontend)
        assert frontend_language(frontend) == "FOR XML"

        builder = TransducerBuilder("builder-view", root="db", start="q0")
        cno, title, dept = Variable("cno"), Variable("title"), Variable("dept")
        builder.start().emit(
            "q",
            "course",
            ConjunctiveQuery((cno,), (RelationAtom("course", (cno, title, dept)),)),
        )

        server = ViewServer()
        from_frontend = server.register_view("frontend", frontend)
        from_transducer = server.register_view("transducer", transducer)
        from_builder = server.register_view("builder", builder)
        from_plan = server.register_view("plan", compile_plan(transducer))
        from_factory = server.register_view("factory", self._forxml_view)
        server.attach(instance)

        assert from_frontend.language == "FOR XML"
        assert from_transducer.language == "transducer"
        assert from_builder.language == "builder DSL"
        assert from_plan.language == "compiled plan"
        assert from_factory.language == "FOR XML"
        reference = server.publish("frontend", output="bytes")
        assert server.publish("transducer", output="bytes") == reference
        assert server.publish("factory", output="bytes") == reference
        assert server.publish("builder", output="bytes")  # structurally different

    def test_shared_plan_cache_and_schema_validation(self):
        transducer = tau1_prerequisite_hierarchy()
        server = ViewServer()
        first = server.register_view("a", transducer, schema=REGISTRAR_SCHEMA)
        second = server.register_view("b", transducer)
        assert first.plan_for(None) is second.plan_for(None)
        with pytest.raises(ServeError, match="already registered"):
            server.register_view("a", transducer)
        from repro.relational.schema import RelationalSchema

        bad_schema = RelationalSchema.from_attributes({"other": ("x",)})
        with pytest.raises(ValueError):
            server.register_view("bad", transducer, schema=bad_schema)
        # Precompiled plans are validated against the declared schema too.
        with pytest.raises(ValueError):
            server.register_view(
                "bad_plan", compile_plan(transducer), schema=bad_schema
            )
        # A failed registration does not squat on the name: retrying with a
        # corrected schema succeeds.
        retried = server.register_view("bad", transducer, schema=REGISTRAR_SCHEMA)
        assert server.view("bad") is retried

    def test_auto_names_skip_explicitly_named_handles(self):
        server = ViewServer()
        first = server.attach(example_registrar_instance(), name="source1")
        second = server.attach(example_registrar_instance())
        assert first.name == "source1" and second.name != "source1"

    def test_failed_attach_does_not_encode_the_instance(self):
        server = ViewServer()
        instance = example_registrar_instance()
        server.attach(instance, name="x")
        with pytest.raises(ServeError, match="already attached"):
            server.attach(instance, name="x", encoded=True)
        assert not instance.is_encoded

    def test_source_resolution_errors(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        with pytest.raises(ServeError, match="attached sources"):
            server.publish("tau1")
        instance = example_registrar_instance()
        assert isinstance(server.publish("tau1", source=instance), TreeNode)
        with pytest.raises(ServeError, match="incremental"):
            server.publish("tau1", source=instance, maintenance="incremental")
        with pytest.raises(ServeError, match="unknown view"):
            server.publish("nope", source=instance)
        with pytest.raises(ServeError, match="unknown backend"):
            server.publish("tau1", source=instance, backend="gpu")
        handle = server.attach(instance)
        assert isinstance(handle, SourceHandle)
        assert isinstance(handle.latest, SourceVersion)
        with pytest.raises(ServeError, match="already attached"):
            server.attach(instance, name=handle.name)
        # Handles belong to one server; a foreign handle (which may share a
        # name with a local one) is rejected instead of sharing chains.
        foreign = ViewServer().attach(example_registrar_instance())
        with pytest.raises(ServeError, match="different server"):
            server.publish("tau1", source=foreign)
        with pytest.raises(ServeError, match="different server"):
            server.subscribe("tau1", foreign)


# ---------------------------------------------------------------------------
# Observability.
# ---------------------------------------------------------------------------


class TestObservability:
    def test_stats_aggregate_views_sources_and_subscriptions(self):
        server = ViewServer()
        server.register_view("tau1", tau1_prerequisite_hierarchy())
        handle = server.attach(example_registrar_instance())
        subscription = server.subscribe("tau1")
        server.publish("tau1", output="bytes", backend="columnar")
        handle.commit(Delta.insert("course", ("cs950", "Proofs", "CS")))
        assert subscription.pending == 1
        stats = server.stats()
        view_stats = {v.name: v for v in stats.views}["tau1"]
        assert view_stats.publishes >= 1
        assert view_stats.last_backend == "columnar"
        assert view_stats.cache["hits"] + view_stats.cache["misses"] > 0
        source_stats = {s.name: s for s in stats.sources}[handle.name]
        assert source_stats.version == 1 and source_stats.commits == 1
        assert source_stats.subscriptions == 1
        assert source_stats.total_tuples == handle.instance.total_size()
        assert stats.subscriptions == 1 and stats.deliveries == 1
        as_dict = stats.as_dict()
        assert as_dict["views"][0]["name"] == "tau1"
        text = stats.describe()
        assert "tau1" in text and handle.name in text

    def test_explain_report_collects_the_three_object_tour(self):
        server = ViewServer()
        server.register_view("tau3", tau3_courses_without_db_prereq())
        handle = server.attach(example_registrar_instance())
        server.publish("tau3", maintenance="incremental")
        handle.commit(Delta.delete("prereq", ("cs240", "cs101")))
        server.publish("tau3", maintenance="incremental")
        report = server.explain("tau3")
        assert report.view == "tau3"
        assert report.rules  # one entry per compiled rule item
        assert any(rule.executions > 0 for rule in report.rules)
        assert any(rule.last_backend == "row" for rule in report.rules)
        strategies = {rule.delta_strategy for rule in report.rules}
        assert any("semi-naive" in s or "recompute" in s for s in strategies)
        assert "republish:" in report.maintenance
        text = report.describe()
        assert "delta:" in text and "backend=" in text
        assert report.as_dict()["view"] == "tau3"


# ---------------------------------------------------------------------------
# The deprecated shims.
# ---------------------------------------------------------------------------


class TestDeprecationShims:
    def test_publish_xml_delegates_and_warns(self, tau1):
        instance = example_registrar_instance()
        plan = compile_plan(tau1)
        with pytest.warns(DeprecationWarning, match="publish_xml"):
            legacy = plan.publish_xml(instance)
        server = ViewServer()
        server.register_view("tau1", tau1)
        assert server.publish("tau1", source=instance, output="bytes") == legacy

    def test_publish_many_and_iter_delegate_and_warn(self, tau1):
        plan = compile_plan(tau1)
        instances = [example_registrar_instance()]
        with pytest.warns(DeprecationWarning, match="publish_many"):
            batch = plan.publish_many(instances)
        with pytest.warns(DeprecationWarning, match="publish_iter"):
            lazy = list(plan.publish_iter(instances))
        assert batch == lazy == [plan.publish(instances[0])]

    def test_incremental_publisher_warns_and_matches_server(self, tau1):
        with pytest.warns(DeprecationWarning, match="IncrementalPublisher"):
            publisher = IncrementalPublisher(tau1, example_registrar_instance())
        step = publisher.insert("course", ("cs960", "Types", "CS"))
        assert step.instance is publisher.instance
        assert publisher.updates == 1
        publisher.verify()

    def test_core_drivers_do_not_warn(self, tau1):
        import warnings

        plan = compile_plan(tau1)
        instance = example_registrar_instance()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan.publish(instance)
            list(plan.publish_events(instance))
            plan.republish(instance, Delta.insert("prereq", ("cs610", "cs240")))
