"""Integration tests for the transformation engine on the paper's examples."""

from __future__ import annotations

import pytest

from repro.core import TransformationLimitError, publish
from repro.core.runtime import TransducerRuntime, publish_full
from repro.core.virtual import eliminate_virtual_nodes
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import generate_registrar_instance
from repro.xmltree.tree import TEXT_TAG, tree


class TestFigure1Views:
    def test_tau1_exports_only_cs_courses(self, tau1, registrar_instance):
        output = publish(tau1, registrar_instance)
        top_level = [child.label for child in output.children]
        assert set(top_level) == {"course"}
        cs_courses = {
            row[0] for row in registrar_instance["course"] if row[2] == "CS"
        }
        top_level_cnos = {
            child.children[0].children[0].text for child in output.children
        }
        assert top_level_cnos == cs_courses

    def test_tau1_unfolds_prerequisite_hierarchy(self, tau1, registrar_instance):
        output = publish(tau1, registrar_instance)
        # cs452 -> cs340 -> cs240 -> cs101: depth of that chain in the tree is
        # 4 course levels * (course + prereq) plus leaf levels.
        assert output.depth() >= 10

    def test_tau1_stop_condition_on_cycles(self, tau1, registrar_instance):
        # cs610 <-> cs620 is a prerequisite cycle; without the stop condition the
        # transformation would not terminate.
        output = publish(tau1, registrar_instance)
        cycle_nodes = [
            node
            for node in output.walk()
            if node.label == "cno" and node.children and node.children[0].text == "cs610"
        ]
        assert cycle_nodes  # the cyclic course is still published

    def test_tau1_children_order(self, tau1, registrar_instance):
        output = publish(tau1, registrar_instance)
        course = output.children[0]
        assert course.child_labels() == ("cno", "title", "prereq")

    def test_tau2_closure_is_flat(self, tau2, registrar_instance):
        output = publish(tau2, registrar_instance)
        assert "l" not in output.labels()  # virtual tag eliminated
        for course in output.children:
            prereq = course.children[2]
            assert set(prereq.child_labels()) <= {"cno"}

    def test_tau2_closure_matches_transitive_closure(self, tau2, registrar_instance):
        output = publish(tau2, registrar_instance)
        closure: dict[str, set[str]] = {}
        prereq_edges = registrar_instance["prereq"].tuples
        for course_row in registrar_instance["course"]:
            if course_row[2] != "CS":
                continue
            reachable: set[str] = set()
            frontier = [course_row[0]]
            while frontier:
                current = frontier.pop()
                for a, b in prereq_edges:
                    if a == current and b not in reachable:
                        reachable.add(b)
                        frontier.append(b)
            closure[course_row[0]] = reachable
        for course in output.children:
            cno = course.children[0].children[0].text
            listed = {node.children[0].text for node in course.children[2].children}
            assert listed == closure[cno]

    def test_tau3_filters_db_prerequisite(self, tau3, registrar_instance):
        output = publish(tau3, registrar_instance)
        listed = {course.children[0].children[0].text for course in output.children}
        # cs450 is titled 'Databases'; only courses having it as an *immediate*
        # prerequisite are excluded -- there are none in the example instance,
        # so every course appears.
        assert "cs450" in listed
        assert output.depth() == 4  # db / course / cno|title / text

    def test_tau3_is_depth_bounded(self, tau3, larger_registrar_instance):
        output = publish(tau3, larger_registrar_instance)
        assert output.depth() <= 4


class TestRuntimeMechanics:
    def test_output_is_deterministic(self, tau1, registrar_instance):
        first = publish(tau1, registrar_instance)
        second = publish(tau1, registrar_instance)
        assert first == second

    def test_result_object_counts(self, tau1, registrar_instance):
        result = publish_full(tau1, registrar_instance)
        assert result.output_size == result.tree.size()
        assert result.node_count >= result.output_size
        assert result.steps > 0

    def test_output_relation_collects_registers(self, tau1, registrar_instance):
        result = publish_full(tau1, registrar_instance)
        relation = result.output_relation("course")
        assert all(len(row) == 2 for row in relation)
        assert {row[0] for row in relation} >= {"cs101", "cs240"}

    def test_text_nodes_carry_values(self, tau1, registrar_instance):
        output = publish(tau1, registrar_instance)
        text_nodes = [node for node in output.walk() if node.label == TEXT_TAG]
        assert text_nodes and all(node.text for node in text_nodes)

    def test_unknown_source_relation_raises(self, tau1, graph_instance):
        with pytest.raises(ValueError):
            publish(tau1, graph_instance)

    def test_node_budget_enforced(self):
        transducer = binary_counter_transducer()
        with pytest.raises(TransformationLimitError):
            TransducerRuntime(transducer, max_nodes=50).run(binary_counter_instance(3))

    def test_empty_instance_gives_root_only(self, tau1):
        instance = generate_registrar_instance(0)
        assert publish(tau1, instance) == tree("db")


class TestBlowupFamilies:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exponential_growth(self, n):
        result = publish_full(chain_of_diamonds_transducer(), chain_of_diamonds_instance(n))
        assert result.output_size >= 2**n
        assert chain_of_diamonds_instance(n).total_size() == 4 * n

    @pytest.mark.parametrize("n", [1, 2])
    def test_doubly_exponential_growth(self, n):
        result = publish_full(
            binary_counter_transducer(), binary_counter_instance(n), max_nodes=10**6
        )
        assert result.output_size >= 2 ** (2**n)

    def test_termination_on_cyclic_graph(self):
        # A cyclic graph exercises the stop condition of the unfolding transducer.
        from repro.relational.instance import Instance
        from repro.workloads.blowup import GRAPH_SCHEMA

        instance = Instance(GRAPH_SCHEMA, {"R": [("a", "b"), ("b", "a")]})
        result = publish_full(chain_of_diamonds_transducer(), instance)
        assert result.output_size > 1  # terminated and produced something


class TestVirtualElimination:
    def test_eliminate_nested_virtual_chain(self):
        document = tree("r", tree("v", tree("v", "a", "b"), "c"), "d")
        cleaned = eliminate_virtual_nodes(document, {"v"})
        assert cleaned == tree("r", "a", "b", "c", "d")

    def test_no_virtual_tags_is_identity(self):
        document = tree("r", "a")
        assert eliminate_virtual_nodes(document, set()) is document

    def test_virtual_leaf_disappears(self):
        document = tree("r", "v", "a")
        assert eliminate_virtual_nodes(document, {"v"}) == tree("r", "a")
