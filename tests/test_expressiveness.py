"""Tests for Section 6: Table III, the UCQ translation, transductions, separations."""

from __future__ import annotations

import pytest

from repro.core import classify, publish
from repro.core.classes import TransducerClass
from repro.core.relational_query import TransducerRelationalQuery, output_relation
from repro.expressiveness import (
    TABLE_III,
    dtd_choice_language,
    nonrecursive_transducer_to_ucq,
    path_through_constant_transducer,
    queries_agree,
    relational_language_of,
    simple_path_counting_transducer,
)
from repro.logic.fo import And, Eq, FormulaQuery, Rel, TrueFormula
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.transductions import FirstOrderTransduction, TransductionError, transduction_to_transducer
from repro.workloads.random_instances import chain_instance, random_graph_instance
from repro.workloads.registrar import tau3_courses_without_db_prereq
from repro.xmltree.tree import tree

x1, y1 = Variable("x1"), Variable("y1")


class TestTableIII:
    def test_every_fragment_with_tuple_store_is_covered(self):
        for name in (
            "PT(CQ, tuple, normal)",
            "PT(FO, tuple, virtual)",
            "PT(IFP, tuple, normal)",
            "PTnr(CQ, tuple, normal)",
            "PTnr(FO, tuple, virtual)",
            "PT(FO, relation, normal)",
            "PT(IFP, relation, virtual)",
        ):
            entry = relational_language_of(TransducerClass.parse(name))
            assert entry.characterisation

    def test_expected_characterisations(self):
        assert "LinDatalog" in relational_language_of(TransducerClass.parse("PT(CQ, tuple, normal)")).characterisation
        assert "UCQ" in relational_language_of(TransducerClass.parse("PTnr(CQ, tuple, virtual)")).characterisation
        assert "PSPACE" in relational_language_of(TransducerClass.parse("PT(FO, relation, normal)")).characterisation
        assert len(TABLE_III) == 8


class TestUcqTranslation:
    def test_ucq_agrees_with_transducer(self):
        from repro.workloads.registrar import tau1_prerequisite_hierarchy

        # Use a non-recursive CQ transducer: the DAD RDB-mapping example.
        from repro.languages.registry import example_dad_rdb_mapping
        from repro.workloads.registrar import example_registrar_instance

        transducer = example_dad_rdb_mapping()
        ucq = nonrecursive_transducer_to_ucq(transducer, "course")
        instance = example_registrar_instance()
        assert ucq.evaluate(instance) == output_relation(transducer, instance, "course")

    def test_ucq_translation_rejects_recursive(self, tau1):
        with pytest.raises(ValueError):
            nonrecursive_transducer_to_ucq(tau1, "course")

    def test_queries_agree_helper(self):
        from repro.logic import parse_cq

        left = parse_cq("ans(x, y) :- E(x, y)")
        right = parse_cq("ans(a, b) :- E(a, b)")
        instances = [random_graph_instance(4, 6, seed=s) for s in range(3)]
        assert queries_agree(left, right, instances)


class TestSeparationWitnesses:
    def test_path_through_constant(self):
        transducer = path_through_constant_transducer("a", "b", "c")
        schema = RelationalSchema.from_attributes({"E": ("src", "dst")})
        with_path = Instance(schema, {"E": [("a", "b"), ("b", "c")]})
        without_path = Instance(schema, {"E": [("a", "c"), ("c", "b")]})
        assert output_relation(transducer, with_path, "ao") == {("a", "c")}
        assert output_relation(transducer, without_path, "ao") == frozenset()

    def test_simple_path_counter(self):
        transducer = simple_path_counting_transducer("s", "t")
        schema = RelationalSchema.from_attributes({"R": ("src", "dst")})
        two_paths = Instance(
            schema, {"R": [("s", "u"), ("s", "v"), ("u", "t"), ("v", "t")]}
        )
        output = publish(transducer, two_paths)
        assert output.child_labels() == ("a", "a")
        one_path = Instance(schema, {"R": [("s", "t")]})
        assert publish(transducer, one_path).child_labels() == ("a",)

    def test_dtd_choice_language_monotonicity_argument(self):
        dtd = dtd_choice_language()
        assert dtd.conforms(tree("a", "b1"))
        assert dtd.conforms(tree("a", "b2"))
        assert not dtd.conforms(tree("a", "b1", "b2"))


class TestTransductions:
    @pytest.fixture
    def copy_graph_transduction(self) -> FirstOrderTransduction:
        """Label every node reachable from the unique source 'root' node."""
        from repro.logic.fo import Exists, Or

        z = Variable("z1")
        occurs = Or((Exists((z,), Rel("E", (x1, z))), Exists((z,), Rel("E", (z, x1)))))
        return FirstOrderTransduction(
            width=1,
            domain_formula=occurs,
            root_formula=Eq(x1, Constant("root")),
            edge_formula=Rel("E", (x1, y1)),
            label_formulas={"n": occurs},
        )

    @pytest.fixture
    def tree_shaped_instance(self) -> Instance:
        schema = RelationalSchema.from_arities({"E": 2})
        return Instance(
            schema,
            {"E": [("root", "a"), ("root", "b"), ("a", "c")]},
        )

    def test_transduction_apply(self, copy_graph_transduction, tree_shaped_instance):
        output = copy_graph_transduction.apply(tree_shaped_instance)
        assert output.label == "r"
        assert output.size() == 5  # r + root + a + b + c

    def test_transduction_unfolds_dags(self, copy_graph_transduction):
        schema = RelationalSchema.from_arities({"E": 2})
        diamond = Instance(
            schema, {"E": [("root", "l"), ("root", "m"), ("l", "s"), ("m", "s")]}
        )
        output = copy_graph_transduction.apply(diamond)
        # The shared sink 's' is duplicated by the unfolding.
        assert output.size() == 6

    def test_transduction_rejects_cycles(self, copy_graph_transduction):
        schema = RelationalSchema.from_arities({"E": 2})
        cyclic = Instance(schema, {"E": [("root", "a"), ("a", "root")]})
        with pytest.raises(TransductionError):
            copy_graph_transduction.apply(cyclic)

    def test_theorem4_translation_matches_transduction(
        self, copy_graph_transduction, tree_shaped_instance
    ):
        transducer = transduction_to_transducer(copy_graph_transduction)
        assert classify(transducer).store.name == "TUPLE"
        direct = copy_graph_transduction.apply(tree_shaped_instance)
        via_transducer = publish(transducer, tree_shaped_instance)
        assert direct.size() == via_transducer.size()
        assert sorted(direct.labels()) == sorted(via_transducer.labels())

    def test_missing_root_is_an_error(self, copy_graph_transduction):
        schema = RelationalSchema.from_arities({"E": 2})
        no_root = Instance(schema, {"E": [("a", "b")]})
        with pytest.raises(TransductionError):
            copy_graph_transduction.apply(no_root)


class TestRelationalQueryView:
    def test_virtual_nodes_do_not_change_the_relation(self, registrar_instance):
        """Theorem 3(1): R_tau is insensitive to making intermediate tags virtual."""
        from repro.workloads.registrar import tau1_prerequisite_hierarchy
        from repro.core.transducer import PublishingTransducer, make_transducer

        base = tau1_prerequisite_hierarchy()
        virtualised = make_transducer(
            base.rules,
            start_state=base.start_state,
            root_tag=base.root_tag,
            virtual_tags={"prereq"},
            register_arities=dict(base.register_arities),
            name="tau1-virtual-prereq",
        )
        assert output_relation(base, registrar_instance, "course") == output_relation(
            virtualised, registrar_instance, "course"
        )

    def test_adapter_logic_and_relations(self, tau3):
        adapter = TransducerRelationalQuery(tau3, "course")
        assert adapter.logic.name == "FO"
        assert adapter.relation_names() == {"course", "prereq"}
