"""Tests for the compiled publishing engine (`repro.engine`).

The literal Section 3 interpreter (:class:`TransducerRuntime`) serves as the
executable specification: every evaluation mode of the compiled plan must
reproduce its output exactly, tree for tree and byte for byte.
"""

from __future__ import annotations

import pytest

from repro.core import classify, publish
from repro.core.rules import RuleItem, RuleQuery, TransductionRule
from repro.core.runtime import TransducerRuntime, TransformationLimitError
from repro.core.transducer import make_transducer
from repro.engine import (
    BuilderError,
    Engine,
    PublishingPlan,
    TransducerBuilder,
    compile_plan,
    transducer,
)
from repro.languages.registry import TABLE_I
from repro.logic.cq import ConjunctiveQuery, RelationAtom, equality
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.workloads.blowup import (
    binary_counter_instance,
    binary_counter_transducer,
    chain_of_diamonds_instance,
    chain_of_diamonds_transducer,
)
from repro.workloads.registrar import (
    REGISTRAR_SCHEMA,
    generate_registrar_instance,
    tau1_prerequisite_hierarchy,
    tau2_prerequisite_closure,
    tau3_courses_without_db_prereq,
)
from repro.xmltree.events import events_to_tree
from repro.xmltree.serialize import to_compact_xml, to_xml
from repro.xmltree.tree import TEXT_TAG


# ---------------------------------------------------------------------------
# Builder DSL.
# ---------------------------------------------------------------------------


def _tiny_schema() -> RelationalSchema:
    return RelationalSchema.from_attributes({"P": ("v",)})


def _tiny_instance() -> Instance:
    return Instance(_tiny_schema(), {"P": [("p1",), ("p2",)]})


def _all_p() -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery((x,), (RelationAtom("P", (x,)),))


def _copy_register(parent_tag: str) -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery((x,), (RelationAtom(f"Reg_{parent_tag}", (x,)),))


class TestTransducerBuilder:
    def test_builder_matches_manual_assembly(self, registrar_instance):
        """The builder produces the same machine as hand-written dataclasses."""
        x = Variable("x")
        phi = _all_p()
        copy = _copy_register("a")
        manual = make_transducer(
            [
                TransductionRule("q0", "r", (RuleItem("q", "a", RuleQuery(phi, 1)),)),
                TransductionRule("q", "a", (RuleItem("q", TEXT_TAG, RuleQuery(copy, 1)),)),
                TransductionRule("q", TEXT_TAG, ()),
            ],
            start_state="q0",
            root_tag="r",
        )
        builder = TransducerBuilder()
        builder.start().emit("q", "a", phi)
        builder.state("q").on("a").emit_text(copy)
        built = builder.build()
        assert built.states == manual.states
        assert built.alphabet == manual.alphabet
        assert dict(built.register_arities) == dict(manual.register_arities)
        assert classify(built) == classify(manual)
        instance = _tiny_instance()
        assert publish(built, instance) == publish(manual, instance)

    def test_fluent_chaining_and_terse_entry(self):
        tau = (
            transducer("chain", root="r")
            .start()
            .emit("q", "a", _all_p())
            .state("q")
            .on("a")
            .emit_text(_copy_register("a"))
            .build()
        )
        tree = publish(tau, _tiny_instance())
        assert tree.child_labels() == ("a", "a")

    def test_group_argument_selects_relation_registers(self):
        builder = TransducerBuilder("relreg")
        builder.start().emit("q", "a", _all_p(), group=0)
        tau = builder.build()
        assert tau.uses_relation_registers()
        tree = publish(tau, _tiny_instance())
        assert tree.child_labels() == ("a",)  # one child carrying the whole relation

    def test_virtual_and_register_arity_declarations(self):
        builder = TransducerBuilder("virt")
        builder.virtual("v").register_arity("v", 1)
        builder.start().emit("q", "v", _all_p())
        builder.state("q").on("v").emit("q", "a", _copy_register("v"))
        tau = builder.build()
        assert tau.virtual_tags == frozenset({"v"})
        tree = publish(tau, _tiny_instance())
        assert "v" not in tree.labels()

    def test_missing_start_rule_is_rejected(self):
        with pytest.raises(BuilderError):
            TransducerBuilder().build()

    def test_emit_text_rejects_start_state(self):
        builder = TransducerBuilder()
        with pytest.raises(BuilderError):
            builder.start().emit_text(_all_p())

    def test_conflicting_group_arities_are_rejected(self):
        builder = TransducerBuilder()
        with pytest.raises(BuilderError):
            builder.start().emit("q", "a", RuleQuery(_all_p(), 1), group=0)

    def test_declared_tracks_rules_in_order(self):
        builder = TransducerBuilder()
        builder.start().emit("q", "a", _all_p())
        builder.state("q").on("a").leaf()
        assert builder.declared == (("q0", "r"), ("q", "a"))

    def test_repeated_on_merges_into_one_rule(self):
        builder = TransducerBuilder()
        builder.start().emit("q", "a", _all_p())
        builder.start().emit("q", "b", _all_p())
        tau = builder.build()
        assert tau.start_rule.child_pairs() == (("q", "a"), ("q", "b"))


# ---------------------------------------------------------------------------
# Plan equivalence against the reference interpreter.
# ---------------------------------------------------------------------------


def _reference_cases():
    instance = generate_registrar_instance(25, max_prereqs=2, seed=9, cycle_fraction=0.1)
    cases = [
        ("tau1", tau1_prerequisite_hierarchy(), instance),
        ("tau2", tau2_prerequisite_closure(), instance),
        ("tau3", tau3_courses_without_db_prereq(), instance),
        ("diamonds", chain_of_diamonds_transducer(), chain_of_diamonds_instance(5)),
        ("counter", binary_counter_transducer(), binary_counter_instance(2)),
    ]
    for entry in TABLE_I:
        cases.append((f"table1-{entry.vendor}-{entry.language}", entry.build_example(), instance))
    return cases


@pytest.mark.parametrize(
    "name,tau,instance", _reference_cases(), ids=lambda case: case if isinstance(case, str) else ""
)
class TestPlanMatchesInterpreter:
    def test_publish_matches(self, name, tau, instance):
        reference = TransducerRuntime(tau, max_nodes=10**6).run(instance)
        plan = compile_plan(tau, max_nodes=10**6)
        assert plan.publish(instance) == reference.tree

    def test_publish_full_matches(self, name, tau, instance):
        reference = TransducerRuntime(tau, max_nodes=10**6).run(instance)
        plan = compile_plan(tau, max_nodes=10**6)
        full = plan.publish_full(instance)
        assert full.tree == reference.tree
        assert full.steps == reference.steps
        assert full.node_count == reference.node_count
        assert full.output_size == reference.output_size

    def test_streamed_events_match_materialised_tree(self, name, tau, instance):
        plan = compile_plan(tau, max_nodes=10**6)
        materialised = plan.publish(instance)
        assert events_to_tree(plan.publish_events(instance)) == materialised

    def test_streamed_serialisation_is_byte_identical(self, name, tau, instance):
        plan = compile_plan(tau, max_nodes=10**6)
        materialised = plan.publish(instance)
        assert plan.publish_xml(instance) == to_xml(materialised)
        assert plan.publish_xml(instance, indent=None) == to_compact_xml(materialised)


# ---------------------------------------------------------------------------
# Batch evaluation and the shared memo cache.
# ---------------------------------------------------------------------------


class TestBatchAndCache:
    def test_publish_many_matches_individual_publishes(self, tau1):
        instances = [generate_registrar_instance(15, seed=s) for s in range(5)]
        plan = Engine().compile(tau1, REGISTRAR_SCHEMA)
        batched = plan.publish_many(instances)
        assert batched == [publish(tau1, instance) for instance in instances]

    def test_repeated_instances_hit_the_cross_run_cache(self, tau1, registrar_instance):
        plan = compile_plan(tau1)
        first = plan.publish(registrar_instance)
        stats_after_first = plan.cache_stats
        second = plan.publish(registrar_instance)
        assert first == second
        stats_after_second = plan.cache_stats
        assert stats_after_second.misses == stats_after_first.misses  # all memoised
        assert stats_after_second.hits > stats_after_first.hits
        assert stats_after_second.instances == 1
        assert 0.0 < stats_after_second.hit_rate <= 1.0

    def test_within_run_memoisation_fires_on_shared_subtrees(self, tau1, registrar_instance):
        # cs240's hierarchy appears under both cs340 and cs450: the second
        # occurrence must be answered from the cache, not re-evaluated.
        plan = compile_plan(tau1)
        plan.publish(registrar_instance)
        stats = plan.cache_stats
        assert stats.hits > 0
        assert stats.misses < stats.hits + stats.misses

    def test_instance_cache_eviction(self, tau1):
        engine = Engine(cache_instances=1)
        plan = engine.compile(tau1)
        for seed in range(3):
            plan.publish(generate_registrar_instance(8, seed=seed))
        stats = plan.cache_stats
        assert stats.instances == 3
        assert stats.evictions == 2

    def test_instance_cache_is_lru_not_fifo(self, tau1):
        plan = Engine(cache_instances=2).compile(tau1)
        a = generate_registrar_instance(8, seed=0)
        b = generate_registrar_instance(8, seed=1)
        c = generate_registrar_instance(8, seed=2)
        plan.publish(a)
        plan.publish(b)
        plan.publish(a)  # refresh a: b becomes the least recently used
        plan.publish(c)  # evicts b, not a
        seen = plan.cache_stats.instances
        plan.publish(a)  # still cached
        assert plan.cache_stats.instances == seen
        plan.publish(b)  # was evicted: needs a fresh instance state
        assert plan.cache_stats.instances == seen + 1

    def test_clear_cache_preserves_counters(self, tau1, registrar_instance):
        plan = compile_plan(tau1)
        plan.publish(registrar_instance)
        before = plan.cache_stats
        plan.clear_cache()
        assert plan.cache_stats == before
        assert plan.publish(registrar_instance) == publish(tau1, registrar_instance)


# ---------------------------------------------------------------------------
# Validation and budgets.
# ---------------------------------------------------------------------------


class TestValidationAndBudgets:
    def test_compile_time_schema_validation(self, tau1):
        with pytest.raises(ValueError):
            Engine().compile(tau1, _tiny_schema())

    def test_publish_validates_instance_schema(self, tau1, graph_instance):
        plan = compile_plan(tau1)
        with pytest.raises(ValueError):
            plan.publish(graph_instance)

    def test_budget_enforced_in_tree_mode(self):
        plan = compile_plan(binary_counter_transducer(), max_nodes=50)
        with pytest.raises(TransformationLimitError):
            plan.publish(binary_counter_instance(3))

    def test_budget_enforced_in_event_mode(self):
        plan = compile_plan(binary_counter_transducer(), max_nodes=50)
        with pytest.raises(TransformationLimitError):
            for _ in plan.publish_events(binary_counter_instance(3)):
                pass

    def test_budget_enforced_in_full_mode(self):
        plan = compile_plan(binary_counter_transducer(), max_nodes=50)
        with pytest.raises(TransformationLimitError):
            plan.publish_full(binary_counter_instance(3))

    def test_per_call_budget_override(self, tau1, registrar_instance):
        plan = compile_plan(tau1, max_nodes=2)
        with pytest.raises(TransformationLimitError):
            plan.publish(registrar_instance)
        assert plan.publish(registrar_instance, max_nodes=10**6).size() > 1

    def test_engine_defaults_flow_into_plans(self, tau1):
        plan = Engine(max_nodes=123).compile(tau1)
        assert plan.max_nodes == 123
        assert Engine(max_nodes=1).compile(tau1, max_nodes=456).max_nodes == 456
        assert isinstance(plan, PublishingPlan)
        assert plan.transducer is tau1


# ---------------------------------------------------------------------------
# Deep outputs: beyond the recursion limit.
# ---------------------------------------------------------------------------


class TestDeepTrees:
    def test_deep_chain_survives_recursion_limit(self):
        import sys

        depth = sys.getrecursionlimit() + 500
        x, y = Variable("x"), Variable("y")
        start = ConjunctiveQuery(
            (x,), (RelationAtom("E", (x, y)),), (equality(x, Constant("n0")),)
        )
        step = ConjunctiveQuery(
            (y,), (RelationAtom("Reg_a", (x,)), RelationAtom("E", (x, y)))
        )
        builder = TransducerBuilder("deep-chain")
        builder.start().emit("q", "a", start)
        builder.state("q").on("a").emit("q", "a", step)
        tau = builder.build()

        from repro.workloads.random_instances import chain_instance

        # chain_instance(depth) has nodes n0..n<depth>: depth+1 a-nodes + root.
        instance = chain_instance(depth)
        plan = compile_plan(tau, max_nodes=10 * depth)
        tree = plan.publish(instance)
        assert tree.depth() == depth + 2
        assert tree.size() == depth + 2
        assert sum(1 for _ in tree.walk()) == depth + 2
        full = plan.publish_full(instance)
        assert full.extended_root.depth() == depth + 2
        assert full.extended_root.size() == depth + 2
        compact = plan.publish_xml(instance, indent=None)
        assert compact.count("<a>") == depth  # innermost renders as <a/>
